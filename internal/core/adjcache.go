package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"graphz/internal/graph"
	"graphz/internal/storage"
)

// In-memory adjacency caching, an extension the paper lists as future
// work ("our current implementation does not have many in-memory
// optimizations", Section VI-E): iterative algorithms re-read the whole
// adjacency file every iteration, so when the graph fits the leftover
// memory budget the engine keeps each partition's adjacency bytes
// resident after the first read and serves later iterations from memory,
// eliminating the per-iteration edge IO that dominates small-graph runs.
//
// The cache is strictly budget-accounted: plan() enables it only when
// the full adjacency fits alongside the index, pipeline buffers, message
// buffers, and the largest partition's vertex states.

// entrySource abstracts where the Worker's adjacency entries come from:
// the Sio prefetcher (device) or the resident cache.
type entrySource interface {
	next() (graph.VertexID, error)
	stop()
}

// memEntryStream serves adjacency entries from a resident byte slice.
type memEntryStream struct {
	data []byte
	pos  int
}

func (s *memEntryStream) next() (graph.VertexID, error) {
	if s.pos+4 > len(s.data) {
		return 0, fmt.Errorf("core: cached adjacency exhausted early")
	}
	v := graph.VertexID(binary.LittleEndian.Uint32(s.data[s.pos:]))
	s.pos += 4
	return v, nil
}

// read bulk-parses resident entries into dst (batchSource).
func (s *memEntryStream) read(dst []graph.VertexID) (int, error) {
	avail := (len(s.data) - s.pos) / 4
	if avail == 0 {
		return 0, fmt.Errorf("core: cached adjacency exhausted early")
	}
	n := len(dst)
	if n > avail {
		n = avail
	}
	data := s.data[s.pos:]
	for i := 0; i < n; i++ {
		dst[i] = graph.VertexID(binary.LittleEndian.Uint32(data[i*4:]))
	}
	s.pos += n * 4
	return n, nil
}

func (s *memEntryStream) stop() {}

// maybeEnableAdjCache decides (post-plan) whether the adjacency fits the
// leftover budget and sets up the cache slots. A shared adjacency cache
// (Options.SharedAdjacency) always enables the cached path — its bytes
// are accounted by the cache's owner, not this engine's budget — with
// the per-partition slots becoming views into the shared entries.
func (e *Engine[V, M]) maybeEnableAdjCache() {
	if e.opts.SharedAdjacency != nil {
		e.adjCache = make([][]byte, e.NumPartitions())
		e.cacheOn = true
		return
	}
	if !e.opts.CacheAdjacency {
		return
	}
	var used int64
	if e.sem {
		// SEM pins the full vertex-state array and the bitmap but holds
		// no message buffers; its resident floor is exactly what planSem
		// charged.
		used = SemBudgetBytes(e.layout, e.vsize)
	} else {
		p := int64(e.NumPartitions())
		var maxPartVerts int64
		for i := 0; i < e.NumPartitions(); i++ {
			if n := int64(e.partStarts[i+1]-e.partStarts[i]) * int64(e.vsize); n > maxPartVerts {
				maxPartVerts = n
			}
		}
		used = e.layout.IndexBytes() + e.adj.TableBytes() + pipelineOverheadBytes +
			p*int64(e.opts.MsgBufferBytes) + maxPartVerts
	}
	adjBytes := e.layout.NumEdges() * 4
	if used+adjBytes <= e.opts.MemoryBudget {
		e.adjCache = make([][]byte, e.NumPartitions())
		e.cacheOn = true
	}
}

// ensureAdjCached makes partition p's adjacency bytes for entry range
// [start, end) resident, charging the one-time fill read. It must only
// be called with the cache enabled, and only from the engine goroutine
// (ps.fillNS and ps.cacheHit are not synchronized).
func (e *Engine[V, M]) ensureAdjCached(p int, start, end int64, ps *pipeStats) error {
	if e.adjCache[p] != nil {
		if ps != nil {
			ps.cacheHit = true
		}
		return nil
	}
	if s := e.opts.SharedAdjacency; s != nil {
		// The shared cache fills the whole file once (whichever engine
		// gets there first pays); this partition's slot becomes a
		// zero-copy view into the resident entries, so every downstream
		// consumer — sequential, selective, parallel — is unchanged.
		data, filled, err := s.slice(start, end, ps)
		if err != nil {
			return fmt.Errorf("core: shared adjacency of partition %d: %w", p, err)
		}
		e.adjCache[p] = data
		if filled && ps != nil {
			ps.cacheHit = true
		}
		return nil
	}
	// First visit: one charged fill read, then resident forever. The
	// cache always holds raw little-endian entries — a block-encoded
	// layout decodes during the fill, so every cache consumer stays
	// codec-independent.
	var t0 time.Time
	if ps != nil {
		t0 = time.Now()
	}
	var data []byte
	if e.adj.FixedEntries() {
		f, err := e.dev.Open(e.layout.EdgesFile())
		if err != nil {
			return err
		}
		data = make([]byte, (end-start)*4)
		r := storage.NewRangeReader(f, start*4, end*4)
		if len(data) > 0 {
			if err := r.ReadFull(data); err != nil {
				return fmt.Errorf("core: caching adjacency of partition %d: %w", p, err)
			}
			ps.heatRead(start, end-start)
		}
	} else {
		var err error
		data, err = decodeEntryRange(e.dev, e.adj, e.layout.EdgesFile(), start, end, ps)
		if err != nil {
			return fmt.Errorf("core: caching adjacency of partition %d: %w", p, err)
		}
	}
	if ps != nil {
		ps.fillNS = int64(time.Since(t0))
	}
	e.adjCache[p] = data
	return nil
}

// partitionEntrySource returns the adjacency source for partition p's
// range [start, end) (in entries): the cache when resident, a caching
// first read when enabled, or the Sio prefetcher. ps, when non-nil,
// receives the pipeline's observability counters.
func (e *Engine[V, M]) partitionEntrySource(p int, start, end int64, ps *pipeStats) (entrySource, error) {
	if e.cacheOn {
		if err := e.ensureAdjCached(p, start, end, ps); err != nil {
			return nil, err
		}
		return &memEntryStream{data: e.adjCache[p]}, nil
	}
	return newAdjStream(e.dev, e.adj, e.layout.EdgesFile(), []entryRange{{start: start, end: end}}, ps)
}

// rangeEntrySource returns an adjacency source for an arbitrary entry
// sub-range [start, end) of partition p, whose full range began at
// partStart. The cached path serves a zero-copy sub-slice (the cache
// must already be resident); the streaming path opens its own bounded
// prefetcher, safe to run concurrently with others. ps may be shared
// across concurrent sources — it only uses atomic fields off the engine
// goroutine.
func (e *Engine[V, M]) rangeEntrySource(p int, partStart, start, end int64, ps *pipeStats) (entrySource, error) {
	if e.cacheOn {
		data := e.adjCache[p]
		return &memEntryStream{data: data[(start-partStart)*4 : (end-partStart)*4]}, nil
	}
	return newAdjStream(e.dev, e.adj, e.layout.EdgesFile(), []entryRange{{start: start, end: end}}, ps)
}

// AdjacencyCached reports whether the engine is serving adjacency from
// memory (set after Run starts).
func (e *Engine[V, M]) AdjacencyCached() bool { return e.cacheOn }
