package core

import (
	"bytes"
	"errors"
	"testing"

	"graphz/internal/dos"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/storage"
)

// The crash-recovery property: for a checkpointed run killed at an
// arbitrary device operation, resuming produces vertex states
// byte-identical to an uninterrupted run — and identical counters. The
// harness measures the run's device-op count with a probe, then crashes
// trial runs at seeded random operations (with torn writes) and resumes
// each on the same post-crash device after a "reboot" (Disarm).

// splitmix64 for trial randomness, seeded per harness so runs reproduce.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// buildDOSOn converts edges on the given device (deterministically: the
// same edges always produce the same layout, which is what lets a
// rebuilt graph pass the checkpoint's layout-hash check).
func buildDOSOn(t *testing.T, dev *storage.Device, edges []graph.Edge) *dos.Graph {
	t.Helper()
	if err := graph.WriteEdges(dev, "raw", edges); err != nil {
		t.Fatal(err)
	}
	g, err := dos.Convert(dos.ConvertConfig{Dev: dev}, "raw", "g")
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func encodeStates[V any](vc graph.Codec[V], vals []V) []byte {
	enc := make([]byte, len(vals)*vc.Size())
	for i, v := range vals {
		vc.Encode(enc[i*vc.Size():], v)
	}
	return enc
}

func crashRecoveryHarness[V, M any](t *testing.T, edges []graph.Edge, prog Program[V, M], vc graph.Codec[V], mc graph.Codec[M], maxIters, workers int, seed uint64, mutate ...func(*Options)) {
	t.Helper()
	baseOpts := func(g *dos.Graph) Options {
		opts := Options{
			MemoryBudget:      budgetForPartitions(g, int64(vc.Size()), 4, 64),
			DynamicMessages:   true,
			MsgBufferBytes:    64,
			MaxIterations:     maxIters,
			WorkerParallelism: workers,
		}
		for _, m := range mutate {
			m(&opts)
		}
		return opts
	}
	newEng := func(g *dos.Graph, dir string, resume bool) *Engine[V, M] {
		opts := baseOpts(g)
		opts.Checkpoint = CheckpointOptions{Dir: dir, Every: 1, Resume: resume}
		eng, err := New[V, M](DOSLayout(g), prog, vc, mc, opts)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}

	// Reference: uninterrupted checkpointed run.
	refDev := storage.NewDevice(storage.NullDevice, storage.Options{})
	refEng := newEng(buildDOSOn(t, refDev, edges), t.TempDir(), false)
	refRes, err := refEng.Run()
	if err != nil {
		t.Fatal(err)
	}
	refVals, err := refEng.Values()
	if err != nil {
		t.Fatal(err)
	}
	refBytes := encodeStates(vc, refVals)

	// Probe: same run on an armed (but fault-free) device to count ops.
	probe := storage.NewFaultDevice(storage.NullDevice, storage.Options{})
	gP := buildDOSOn(t, probe.Device, edges)
	probe.Arm(storage.FaultPlan{})
	if _, err := newEng(gP, t.TempDir(), false).Run(); err != nil {
		t.Fatal(err)
	}
	totalOps := probe.Ops()
	if totalOps < 10 {
		t.Fatalf("probe counted only %d device ops; harness is vacuous", totalOps)
	}

	rng := seed
	crashes := 0
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		crashAt := int64(1 + splitmix64(&rng)%uint64(totalOps))
		dir := t.TempDir()
		fd := storage.NewFaultDevice(storage.NullDevice, storage.Options{})
		g := buildDOSOn(t, fd.Device, edges)
		fd.Arm(storage.FaultPlan{Seed: splitmix64(&rng), CrashAtOp: crashAt, TornWrites: true})
		_, err := newEng(g, dir, false).Run()
		if err != nil {
			if !errors.Is(err, storage.ErrCrashed) {
				t.Logf("trial %d (crash at op %d): run failed with %v (not ErrCrashed; wrapped errors are fine as long as recovery works)", trial, crashAt, err)
			}
			crashes++
		}
		// Reboot: same device, crash latch cleared, torn state intact.
		fd.Disarm()
		reng := newEng(g, dir, true)
		res, err := reng.Run()
		if err != nil {
			t.Fatalf("trial %d (workers=%d, crash at op %d/%d): recovery failed: %v",
				trial, workers, crashAt, totalOps, err)
		}
		vals, err := reng.Values()
		if err != nil {
			t.Fatal(err)
		}
		if got := encodeStates(vc, vals); !bytes.Equal(got, refBytes) {
			for i := 0; i < len(refBytes)/vc.Size(); i++ {
				a := refBytes[i*vc.Size() : (i+1)*vc.Size()]
				b := got[i*vc.Size() : (i+1)*vc.Size()]
				if !bytes.Equal(a, b) {
					t.Fatalf("trial %d (workers=%d, crash at op %d/%d): vertex %d state %x, uninterrupted %x",
						trial, workers, crashAt, totalOps, i, b, a)
				}
			}
		}
		if stripDurability(res) != stripDurability(refRes) {
			t.Fatalf("trial %d (workers=%d, crash at op %d/%d): result %+v, uninterrupted %+v",
				trial, workers, crashAt, totalOps, res, refRes)
		}
	}
	if crashes == 0 {
		t.Fatalf("none of %d trials crashed; harness is vacuous", trials)
	}
}

func TestCrashRecoveryMinLabelSequential(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 61)
	crashRecoveryHarness[minVal, uint32](t, edges, minLabel{}, minValCodec{}, graph.Uint32Codec{}, 0, 0, 101)
}

func TestCrashRecoveryMinLabelParallel(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 62)
	crashRecoveryHarness[minVal, uint32](t, edges, minLabel{}, minValCodec{}, graph.Uint32Codec{}, 0, 4, 102)
}

// The selective variants add the active-vertex bitmap to the durable
// state: a resumed run must restore it from the checkpoint's "activeset"
// section and reproduce the uninterrupted run's schedule exactly —
// including the BlocksScanned/BlocksSkipped counters compared through
// stripDurability's Result equality below.

func TestCrashRecoverySelectiveSequential(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 65)
	// A never-reachable density threshold keeps every partition on the
	// sparse run-scheduled path, so the restored bitmap drives real
	// block skipping across the crash boundary.
	crashRecoveryHarness[minVal, uint32](t, edges, minLabel{}, minValCodec{}, graph.Uint32Codec{}, 0, 0, 105,
		func(o *Options) { o.SelectiveScheduling = true; o.SelectiveDensity = 2 })
}

func TestCrashRecoverySelectiveParallel(t *testing.T) {
	edges := gen.RMAT(8, 1500, gen.NaturalRMAT, 66)
	// Default density: dense iterations stream fully through the
	// parallel Worker (exercising the chunk bit overlays), sparse tails
	// take the selective path.
	crashRecoveryHarness[minVal, uint32](t, edges, minLabel{}, minValCodec{}, graph.Uint32Codec{}, 0, 4, 106,
		func(o *Options) { o.SelectiveScheduling = true })
}

func TestCrashRecoveryPageRankSequential(t *testing.T) {
	edges := gen.RMAT(8, 2000, gen.NaturalRMAT, 63)
	crashRecoveryHarness[prVal, float64](t, edges, prProg{}, prCodec{}, f64Codec{}, 5, 0, 103)
}

func TestCrashRecoveryPageRankParallel(t *testing.T) {
	edges := gen.RMAT(8, 2000, gen.NaturalRMAT, 64)
	crashRecoveryHarness[prVal, float64](t, edges, prProg{}, prCodec{}, f64Codec{}, 5, 4, 104)
}
