package serve

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"graphz/internal/bench"
	"graphz/internal/core"
	"graphz/internal/dos"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/storage"
)

// buildGraph converts an RMAT edge set to a block-encoded (varint) DOS
// graph on a fresh device, so the serving win includes codec decode.
func buildGraph(t *testing.T, seed uint64) (*dos.Graph, []graph.Edge) {
	t.Helper()
	edges := gen.RMAT(9, 4000, gen.NaturalRMAT, seed)
	dev := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev, "raw", edges); err != nil {
		t.Fatal(err)
	}
	g, err := dos.Convert(dos.ConvertConfig{Dev: dev, Codec: storage.CodecVarint}, "raw", "g")
	if err != nil {
		t.Fatal(err)
	}
	return g, edges
}

func newServer(t *testing.T, budget int64, g *dos.Graph) *Server {
	t.Helper()
	s, err := New(Config{MemoryBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterGraph("main", g); err != nil {
		t.Fatal(err)
	}
	return s
}

func submitWait(t *testing.T, s *Server, req SubmitRequest) JobStatus {
	t.Helper()
	st, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st, err = s.Wait(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// soloValues runs the same algorithm standalone — a private engine on a
// fresh layout with no shared adjacency, the exact path graphz-run
// takes — and returns its values in original-ID order.
func soloValues(t *testing.T, g *dos.Graph, algo bench.Algo, p bench.AlgoParams, budget int64) map[uint32]float64 {
	t.Helper()
	_, vals, err := bench.ExecAlgo(algo, core.DOSLayout(g), core.Options{
		MemoryBudget: budget, DynamicMessages: true, Name: "solo-" + string(algo),
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	n2o, err := g.NewToOld()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[uint32]float64, len(vals))
	for newID, v := range vals {
		out[uint32(n2o[newID])] = v
	}
	return out
}

// TestServingWin is the acceptance test: with one shared resident graph,
// k sequential point-query jobs pay the open/decode cost exactly once —
// device read bytes and codec decode counters for jobs 2..k are strictly
// below job 1 — and every job's results are byte-identical to a
// standalone run.
func TestServingWin(t *testing.T) {
	g, _ := buildGraph(t, 91)
	const jobBudget = 8 << 20
	s := newServer(t, 256<<20, g)

	src := uint32(0)
	const k = 4
	var stats [k]JobStatus
	for i := 0; i < k; i++ {
		stats[i] = submitWait(t, s, SubmitRequest{Graph: "main", Algo: "BFS", Budget: jobBudget, Source: &src})
		if stats[i].State != StateDone {
			t.Fatalf("job %d state %s (%s)", i+1, stats[i].State, stats[i].Error)
		}
	}

	// Job 1 paid the decode: encoded bytes read off the device plus the
	// whole-file fill. Jobs 2..k must be strictly cheaper on both axes.
	if stats[0].CodecBytesEncoded == 0 {
		t.Fatal("job 1 decoded nothing — shared fill did not run")
	}
	if stats[0].DeviceReadBytes == 0 {
		t.Fatal("job 1 read nothing")
	}
	for i := 1; i < k; i++ {
		if stats[i].DeviceReadBytes >= stats[0].DeviceReadBytes {
			t.Errorf("job %d read %d device bytes, not below job 1's %d",
				i+1, stats[i].DeviceReadBytes, stats[0].DeviceReadBytes)
		}
		if stats[i].CodecBytesEncoded >= stats[0].CodecBytesEncoded {
			t.Errorf("job %d decoded %d encoded bytes, not below job 1's %d",
				i+1, stats[i].CodecBytesEncoded, stats[0].CodecBytesEncoded)
		}
		if stats[i].CodecBytesEncoded != 0 {
			t.Errorf("job %d decoded %d encoded bytes, want 0 with a hot cache",
				i+1, stats[i].CodecBytesEncoded)
		}
	}

	// Results byte-identical to a standalone engine run.
	want := soloValues(t, g, bench.BFS, bench.AlgoParams{Source: 0}, jobBudget)
	for i := 0; i < k; i++ {
		res, err := s.Result(stats[i].ID, 0, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.All) != len(want) {
			t.Fatalf("job %d returned %d values, want %d", i+1, len(res.All), len(want))
		}
		for _, vv := range res.All {
			if vv.Value != want[vv.Vertex] {
				t.Fatalf("job %d vertex %d = %v, solo %v", i+1, vv.Vertex, vv.Value, want[vv.Vertex])
			}
		}
	}

	// Distinct algorithms see the same hot cache.
	pr := submitWait(t, s, SubmitRequest{Graph: "main", Algo: "PR", Budget: jobBudget})
	if pr.State != StateDone {
		t.Fatalf("PR job: %s (%s)", pr.State, pr.Error)
	}
	if pr.CodecBytesEncoded != 0 {
		t.Errorf("PR job decoded %d bytes on a hot cache", pr.CodecBytesEncoded)
	}
	prWant := soloValues(t, g, bench.PR, bench.AlgoParams{}, jobBudget)
	prRes, err := s.Result(pr.ID, 0, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, vv := range prRes.All {
		if vv.Value != prWant[vv.Vertex] {
			t.Fatalf("PR vertex %d = %v, solo %v", vv.Vertex, vv.Value, prWant[vv.Vertex])
		}
	}
}

// TestConcurrentJobs runs several jobs at once over one shared graph and
// checks each against its solo run.
func TestConcurrentJobs(t *testing.T) {
	g, _ := buildGraph(t, 92)
	const jobBudget = 8 << 20
	s := newServer(t, 256<<20, g)

	algos := []string{"BFS", "CC", "PR", "SSSP"}
	ids := make([]string, len(algos))
	for i, a := range algos {
		st, err := s.Submit(SubmitRequest{Graph: "main", Algo: a, Budget: jobBudget})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			s.Wait(id) //nolint:errcheck
		}(id)
	}
	wg.Wait()

	for i, a := range algos {
		st, err := s.Job(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("%s: %s (%s)", a, st.State, st.Error)
		}
		algo, _ := bench.ParseAlgo(a)
		want := soloValues(t, g, algo, bench.AlgoParams{}, jobBudget)
		res, err := s.Result(ids[i], 0, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, vv := range res.All {
			if vv.Value != want[vv.Vertex] {
				t.Fatalf("%s vertex %d = %v, solo %v", a, vv.Vertex, vv.Value, want[vv.Vertex])
			}
		}
	}

	if st := s.Stats(); st.BudgetInUse != 0 || st.JobsRunning != 0 {
		t.Errorf("budget not fully released: %+v", st)
	}
}

// checkInvariant asserts the server never over-commits its budget.
func checkInvariant(t *testing.T, s *Server) {
	t.Helper()
	st := s.Stats()
	if st.ResidentBytes+st.BudgetInUse > st.MemoryBudget {
		t.Fatalf("budget exceeded: resident %d + in-use %d > total %d",
			st.ResidentBytes, st.BudgetInUse, st.MemoryBudget)
	}
}

// TestAdmissionControl is the other acceptance leg: over-budget
// submissions queue FIFO, oversized ones are rejected outright, the
// server never exceeds its global budget, and cancellation releases
// budget (queued and running both).
func TestAdmissionControl(t *testing.T) {
	g, _ := buildGraph(t, 93)
	resident := core.NewSharedGraph(g).ResidentBytes()

	// Budget fits the resident graph plus exactly two 8 MiB jobs.
	const jobBudget = 8 << 20
	total := resident + 2*jobBudget + jobBudget/2
	s, err := New(Config{MemoryBudget: total, QueueLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterGraph("main", g); err != nil {
		t.Fatal(err)
	}

	// Hold admitted jobs at the start line so admission state is
	// observable; released (or cancelled) jobs proceed normally.
	hold := make(chan struct{})
	s.beforeRun = func(j *Job) {
		select {
		case <-hold:
		case <-j.ctx.Done():
		}
	}

	submit := func() JobStatus {
		t.Helper()
		st, err := s.Submit(SubmitRequest{Graph: "main", Algo: "BFS", Budget: jobBudget})
		if err != nil {
			t.Fatal(err)
		}
		checkInvariant(t, s)
		return st
	}

	j1, j2, j3, j4 := submit(), submit(), submit(), submit()
	st := s.Stats()
	if st.JobsRunning != 2 || st.JobsQueued != 2 {
		t.Fatalf("running %d queued %d, want 2/2", st.JobsRunning, st.JobsQueued)
	}
	for _, id := range []string{j1.ID, j2.ID} {
		if got, _ := s.Job(id); got.State != StateRunning {
			t.Errorf("%s state %s, want running", id, got.State)
		}
	}
	for _, id := range []string{j3.ID, j4.ID} {
		if got, _ := s.Job(id); got.State != StateQueued {
			t.Errorf("%s state %s, want queued", id, got.State)
		}
	}

	// Queue at capacity: the next submission bounces with ErrQueueFull.
	if _, err := s.Submit(SubmitRequest{Graph: "main", Algo: "BFS", Budget: jobBudget}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("5th submit err = %v, want ErrQueueFull", err)
	}

	// Oversized: no admission order can ever run it — rejected, not
	// queued (checked before the queue-limit bounce).
	if _, err := s.Submit(SubmitRequest{Graph: "main", Algo: "BFS", Budget: total}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversized submit err = %v, want ErrBadRequest", err)
	}

	// Cancelling a queued job removes it without touching the budget.
	if st, err := s.Cancel(j3.ID); err != nil || st.State != StateCancelled {
		t.Fatalf("cancel queued: %+v, %v", st, err)
	}
	checkInvariant(t, s)
	if st := s.Stats(); st.JobsQueued != 1 {
		t.Fatalf("queued %d after cancel, want 1", st.JobsQueued)
	}

	// Cancelling a running job releases its budget, admitting the next
	// queued job (j4).
	if _, err := s.Cancel(j1.ID); err != nil {
		t.Fatal(err)
	}
	if st, err := s.Wait(j1.ID); err != nil || st.State != StateCancelled {
		t.Fatalf("wait cancelled: %+v, %v", st, err)
	}
	checkInvariant(t, s)
	waitState := func(id string, want JobState) {
		t.Helper()
		got, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if got.State != want {
			t.Fatalf("%s state %s, want %s", id, got.State, want)
		}
	}
	waitState(j4.ID, StateRunning)
	if st := s.Stats(); st.JobsQueued != 0 || st.JobsRunning != 2 {
		t.Fatalf("after release: %+v", st)
	}

	// Let the held jobs run to completion; everything drains.
	close(hold)
	for _, id := range []string{j2.ID, j4.ID} {
		if st, err := s.Wait(id); err != nil || st.State != StateDone {
			t.Fatalf("%s: %+v, %v", id, st, err)
		}
	}
	checkInvariant(t, s)
	if st := s.Stats(); st.BudgetInUse != 0 || st.JobsRunning != 0 {
		t.Fatalf("budget leaked: %+v", st)
	}
}

// TestSubmitValidation covers the 400-class submission errors.
func TestSubmitValidation(t *testing.T) {
	g, _ := buildGraph(t, 94)
	s := newServer(t, 256<<20, g)

	if _, err := s.Submit(SubmitRequest{Graph: "nope", Algo: "BFS"}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("unknown graph: %v", err)
	}
	if _, err := s.Submit(SubmitRequest{Graph: "main", Algo: "nope"}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("unknown algo: %v", err)
	}
	bad := uint32(1 << 30)
	if _, err := s.Submit(SubmitRequest{Graph: "main", Algo: "BFS", Source: &bad}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("bad source: %v", err)
	}
	if _, err := s.Job("job-999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown job: want ErrNotFound")
	}
	if _, err := s.Cancel("job-999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown job: want ErrNotFound")
	}

	// A job whose engine budget is too small to plan fails at run time,
	// classified for the API as a budget error.
	st := submitWait(t, s, SubmitRequest{Graph: "main", Algo: "BFS", Budget: 4096})
	if st.State != StateFailed || st.ErrorKind != "budget" {
		t.Errorf("tiny-budget job: state %s kind %q (%s)", st.State, st.ErrorKind, st.Error)
	}
}

// TestSemAdmission: a forced-SEM job whose budget cannot pin its vertex
// states resident is never admitted — rejected at submission, before it
// can occupy a queue slot or reach core.New — while the same job with a
// budget clearing core.SemBudgetBytes runs semi-external and returns
// values identical to the partitioned solo run.
func TestSemAdmission(t *testing.T) {
	g, _ := buildGraph(t, 96)
	s := newServer(t, 256<<20, g)

	need := core.SemBudgetBytes(core.DOSLayout(g), bench.AlgoVertexSize(bench.CC))

	// Under the pin floor: rejected outright, nothing queued or running.
	_, err := s.Submit(SubmitRequest{Graph: "main", Algo: "CC", Budget: need - 1, Sem: "on"})
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unpinnable SEM submit err = %v, want ErrBadRequest", err)
	}
	if st := s.Stats(); st.JobsQueued != 0 || st.JobsRunning != 0 || st.BudgetInUse != 0 {
		t.Fatalf("rejected SEM job left admission state behind: %+v", st)
	}

	// Garbage mode string is a 400, not a silent auto.
	if _, err := s.Submit(SubmitRequest{Graph: "main", Algo: "CC", Sem: "fast"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("bad sem mode err = %v, want ErrBadRequest", err)
	}

	// At the floor: admitted, runs semi-external, matches the
	// partitioned baseline byte for byte.
	st := submitWait(t, s, SubmitRequest{Graph: "main", Algo: "CC", Budget: need, Sem: "on"})
	if st.State != StateDone {
		t.Fatalf("SEM job: %s (%s)", st.State, st.Error)
	}
	if st.Sem != "on" {
		t.Errorf("status sem = %q, want on", st.Sem)
	}
	want := soloValues(t, g, bench.CC, bench.AlgoParams{}, 8<<20)
	res, err := s.Result(st.ID, 0, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, vv := range res.All {
		if vv.Value != want[vv.Vertex] {
			t.Fatalf("SEM vertex %d = %v, partitioned solo %v", vv.Vertex, vv.Value, want[vv.Vertex])
		}
	}
	// The exported per-job metrics prove the engine actually took the
	// fast path (and, by the zero spill counter, never buffered).
	snap := s.reg.Snapshot()
	semRuns, spilled := false, int64(0)
	for name, v := range snap {
		if strings.Contains(name, "graphz_sem_runs_total") && strings.Contains(name, st.ID) {
			semRuns = v == 1
		}
		if strings.Contains(name, "graphz_messages_spilled_total") && strings.Contains(name, st.ID) {
			spilled = v
		}
	}
	if !semRuns {
		t.Errorf("job metrics missing graphz_sem_runs_total=1 for %s", st.ID)
	}
	if spilled != 0 {
		t.Errorf("SEM job spilled %d messages, want 0", spilled)
	}
}

// TestJobFilesCleanedUp: a finished (or cancelled) job leaves no runtime
// files on the shared device.
func TestJobFilesCleanedUp(t *testing.T) {
	g, _ := buildGraph(t, 95)
	s := newServer(t, 256<<20, g)
	st := submitWait(t, s, SubmitRequest{Graph: "main", Algo: "CC", Budget: 8 << 20})
	if st.State != StateDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}
	for _, f := range g.Device().List() {
		if len(f) > 4 && f[:4] == "job-" {
			t.Errorf("leftover job file %q", f)
		}
	}
}
