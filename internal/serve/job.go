package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"graphz/internal/bench"
	"graphz/internal/core"
	"graphz/internal/graph"
	"graphz/internal/obs"
	"graphz/internal/storage"
)

// JobState is a job's lifecycle position: queued → running → one of
// done / failed / cancelled.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (st JobState) Terminal() bool {
	return st == StateDone || st == StateFailed || st == StateCancelled
}

// SubmitRequest is the POST /jobs body. Source is in the graph's
// original (input) vertex-ID space; omitted, the job roots at the
// max-out-degree vertex (degree-ordered new ID 0), the same default the
// benchmark harness uses.
type SubmitRequest struct {
	Graph      string  `json:"graph"`
	Algo       string  `json:"algo"`
	Budget     int64   `json:"budget,omitempty"`
	Source     *uint32 `json:"source,omitempty"`
	Iterations int     `json:"iterations,omitempty"`
	Damping    float32 `json:"damping,omitempty"`
	Walkers    int     `json:"walkers,omitempty"`
	// Sem selects the engine's semi-external-memory mode: "auto" (or
	// empty), "on", "off". A "sem":"on" job is rejected at submission
	// unless its budget clears core.SemBudgetBytes for this graph and
	// algorithm — admission reserves the job's whole budget, and a SEM
	// run pins its vertex states resident for the entire run, so a
	// budget that cannot pin them could never start.
	Sem string `json:"sem,omitempty"`
}

// Job is one submitted run. Fields past the constructor are guarded by
// the server's mutex; the run goroutine owns the engine itself.
type Job struct {
	ID     string
	Graph  string
	Algo   bench.Algo
	Budget int64
	Sem    core.SemMode

	state     JobState
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time

	params bench.AlgoParams
	rg     *residentGraph
	reg    *obs.Registry // per-job engine metrics
	ctx    context.Context
	cancel context.CancelCauseFunc
	done   chan struct{}

	result   core.Result
	values   []float64 // per-vertex, new-ID space
	report   *obs.RunReport
	deviceIO storage.Stats
	wall     time.Duration
}

// JobStatus is the API view of a job. The device and codec counters are
// what the serving win is measured by: with a warm shared graph they
// collapse to zero for everything but the job's own vertex-state and
// message files.
type JobStatus struct {
	ID        string    `json:"id"`
	Graph     string    `json:"graph"`
	Algo      string    `json:"algo"`
	State     JobState  `json:"state"`
	Budget    int64     `json:"budget"`
	Sem       string    `json:"sem,omitempty"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
	Error     string    `json:"error,omitempty"`
	// ErrorKind classifies failures: "bad_request" for configurations
	// the caller must fix (core.ErrInvalidOptions), "budget" for runs
	// whose engine budget could not fit the graph (core.ErrMemoryBudget),
	// "internal" otherwise.
	ErrorKind string `json:"error_kind,omitempty"`

	Iterations        int           `json:"iterations,omitempty"`
	Partitions        int           `json:"partitions,omitempty"`
	WallTime          time.Duration `json:"wall_time_ns,omitempty"`
	DeviceReadBytes   int64         `json:"device_read_bytes"`
	DeviceWriteBytes  int64         `json:"device_write_bytes"`
	DeviceReadOps     int64         `json:"device_read_ops"`
	CodecBytesEncoded int64         `json:"codec_bytes_encoded"`
	CodecBytesRaw     int64         `json:"codec_bytes_raw"`
}

// setRunning transitions queued → running. Caller holds the server mu.
func (j *Job) setRunning() {
	j.state = StateRunning
	j.started = time.Now()
}

// statusLocked renders the API view. Caller holds the server mu.
func (j *Job) statusLocked() JobStatus {
	st := JobStatus{
		ID: j.ID, Graph: j.Graph, Algo: string(j.Algo), State: j.state,
		Budget: j.Budget, Sem: j.Sem.String(),
		Submitted: j.submitted, Started: j.started, Finished: j.finished,
		Iterations: j.result.Iterations, Partitions: j.result.Partitions,
		WallTime:          j.wall,
		DeviceReadBytes:   j.deviceIO.ReadBytes,
		DeviceWriteBytes:  j.deviceIO.WriteBytes,
		DeviceReadOps:     j.deviceIO.ReadOps,
		CodecBytesEncoded: j.result.CodecBytesEncoded,
		CodecBytesRaw:     j.result.CodecBytesRaw,
	}
	if j.err != nil {
		st.Error = j.err.Error()
		st.ErrorKind = errorKind(j.err)
	}
	return st
}

// errorKind classifies a run error for the API (and the HTTP layer's
// 4xx-vs-5xx mapping of submission-time failures).
func errorKind(err error) string {
	switch {
	case errors.Is(err, core.ErrCancelled):
		return "cancelled"
	case errors.Is(err, core.ErrInvalidOptions):
		return "bad_request"
	case errors.Is(err, core.ErrMemoryBudget):
		return "budget"
	default:
		return "internal"
	}
}

// Submit validates a request, assigns the job ID, and either admits the
// job immediately or queues it (bounded FIFO). The returned status is
// the submission-time snapshot; poll Job/status for progress.
func (s *Server) Submit(req SubmitRequest) (JobStatus, error) {
	algo, err := bench.ParseAlgo(req.Algo)
	if err != nil {
		return JobStatus{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	rg, ok := s.graphs[req.Graph]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: unknown graph %q (registered: %s)",
			ErrBadRequest, req.Graph, strings.Join(s.order, ", "))
	}
	budget := req.Budget
	if budget <= 0 {
		budget = s.cfg.DefaultJobBudget
	}
	// Oversized means no admission order can ever run it: even with the
	// server idle, resident graphs plus this budget exceed the total.
	if s.resident+budget > s.cfg.MemoryBudget {
		return JobStatus{}, fmt.Errorf("%w: job budget %d cannot fit: %d of %d server budget remain after resident graphs",
			ErrBadRequest, budget, s.cfg.MemoryBudget-s.resident, s.cfg.MemoryBudget)
	}
	sem, err := core.ParseSemMode(req.Sem)
	if err != nil {
		return JobStatus{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	// A forced-SEM job pins its full vertex-state array resident for the
	// whole run, all inside the budget admission reserves for it. If the
	// budget cannot cover that pin, core.New would fail the moment the
	// job is admitted — reject now, at submission, with the floor the
	// caller must clear. (An "auto" job whose budget misses the floor
	// simply runs partitioned; nothing to reject.)
	if sem == core.SemOn {
		if need := core.SemBudgetBytes(rg.sg.View(), bench.AlgoVertexSize(algo)); budget < need {
			return JobStatus{}, fmt.Errorf("%w: semi-external %s on %q needs a job budget of at least %d B to pin vertex states resident, got %d B",
				ErrBadRequest, algo, req.Graph, need, budget)
		}
	}
	params := bench.AlgoParams{
		Iterations: req.Iterations,
		Damping:    req.Damping,
		Walkers:    req.Walkers,
	}
	if req.Source != nil {
		old := graph.VertexID(*req.Source)
		if !rg.old[old] {
			return JobStatus{}, fmt.Errorf("%w: source vertex %d not in graph %q", ErrBadRequest, old, req.Graph)
		}
		params.Source = rg.o2n[old]
	}
	if len(s.queue) >= s.cfg.QueueLimit {
		return JobStatus{}, fmt.Errorf("%w: %d jobs queued (limit %d)", ErrQueueFull, len(s.queue), s.cfg.QueueLimit)
	}

	s.nextID++
	ctx, cancel := context.WithCancelCause(context.Background())
	j := &Job{
		ID:        fmt.Sprintf("job-%06d", s.nextID),
		Graph:     req.Graph,
		Algo:      algo,
		Budget:    budget,
		Sem:       sem,
		state:     StateQueued,
		submitted: time.Now(),
		params:    params,
		rg:        rg,
		reg:       obs.NewRegistry(),
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
	}
	s.jobs[j.ID] = j
	s.jobOrder = append(s.jobOrder, j)
	s.queue = append(s.queue, j)
	s.pumpLocked()
	return j.statusLocked(), nil
}

// run executes an admitted job on its own goroutine: a private engine
// over the shared graph, runtime files prefixed with the job ID, the
// job's context making it cancellable at partition boundaries.
func (s *Server) run(j *Job) {
	if hook := s.beforeRun; hook != nil {
		hook(j)
	}
	dev := j.rg.sg.Graph().Device()
	// Per-job device attribution by stats delta: exact when jobs run
	// one at a time, approximate under concurrency (the device is
	// shared). The per-job registry's codec counters are always exact.
	before := dev.Stats()
	tr := obs.NewCollectingTracer(nil)
	t0 := time.Now()
	opts := core.Options{
		MemoryBudget:    j.Budget,
		DynamicMessages: true,
		SemiExternal:    j.Sem,
		Context:         j.ctx,
		Name:            j.ID,
		SharedAdjacency: j.rg.sg.Adjacency(),
		Obs:             j.reg,
		Trace:           tr,
	}
	res, vals, err := bench.ExecAlgo(j.Algo, j.rg.sg.View(), opts, j.params)
	wall := time.Since(t0)
	io := dev.Stats().Sub(before)
	if err != nil {
		// A failed or cancelled run leaves its vertex-state and message
		// files behind (graphzalgo only cleans up on success); drop
		// everything under the job's prefix so the device doesn't leak.
		removeJobFiles(dev, j.ID+".")
	}
	var report *obs.RunReport
	if err == nil {
		report = obs.BuildReport(obs.ReportInfo{
			Engine:      "graphz-serve",
			Algo:        string(j.Algo),
			Device:      dev.Kind().String(),
			BudgetBytes: j.Budget,
			Config:      map[string]string{"graph": j.Graph, "job": j.ID},
		}, j.reg, tr, core.DeviceFileIO(dev))
	}

	s.mu.Lock()
	j.finished = time.Now()
	j.wall = wall
	j.deviceIO = io
	switch {
	case err == nil:
		j.state = StateDone
		j.result = res
		j.values = vals
		j.report = report
	case errors.Is(err, core.ErrCancelled):
		j.state = StateCancelled
		j.err = err
	default:
		j.state = StateFailed
		j.err = err
	}
	s.exportJobMetricsLocked(j)
	s.mu.Unlock()
	// Release before signalling done so a waiter observing a terminal
	// state also observes the budget returned.
	s.release(j)
	close(j.done)
}

// removeJobFiles drops every device file under prefix (best effort; the
// device records failures in its RemoveErrors stat).
func removeJobFiles(dev *storage.Device, prefix string) {
	for _, f := range dev.List() {
		if strings.HasPrefix(f, prefix) {
			dev.Remove(f) //nolint:errcheck // audit trail in device stats
		}
	}
}

// exportJobMetricsLocked folds a finished job's engine metrics into the
// server registry as labeled series (obs.LabelName), so one /metrics
// scrape shows per-job counters next to the server gauges. Series
// accumulate for the life of the process — one set per finished job —
// which is fine at admission-queue scale; a production deployment would
// cap or age them out. Caller holds mu.
func (s *Server) exportJobMetricsLocked(j *Job) {
	s.reg.Counter(obs.LabelName("graphz_serve_jobs_finished_total", "state", string(j.state))).Inc()
	for name, v := range j.reg.Snapshot() {
		s.reg.Gauge(obs.LabelName(name, "job", j.ID, "graph", j.Graph, "algo", string(j.Algo))).Set(v)
	}
}

// Job returns the status snapshot of one job.
func (s *Server) Job(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	return j.statusLocked(), nil
}

// Jobs lists every job in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.jobOrder))
	for _, j := range s.jobOrder {
		out = append(out, j.statusLocked())
	}
	return out
}

// Cancel stops a job: a queued job is removed from the admission queue
// immediately; a running one has its context cancelled and finishes at
// the next partition boundary (poll until terminal). Cancelling a
// terminal job is a no-op returning its final status.
func (s *Server) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobStatus{}, fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	switch j.state {
	case StateQueued:
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		j.state = StateCancelled
		j.finished = time.Now()
		j.err = fmt.Errorf("%w: cancelled while queued", core.ErrCancelled)
		s.exportJobMetricsLocked(j)
		close(j.done)
		// Removing a queued head can unblock nothing (it held no
		// budget), but the next head may differ in size; re-pump.
		s.pumpLocked()
	case StateRunning:
		j.cancel(fmt.Errorf("cancelled via API"))
	}
	st := j.statusLocked()
	s.mu.Unlock()
	return st, nil
}

// Wait blocks until the job reaches a terminal state (tests and clients
// that prefer blocking to polling).
func (s *Server) Wait(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	<-j.done
	return s.Job(id)
}

// VertexValue is one (original vertex ID, value) pair of a result.
type VertexValue struct {
	Vertex uint32  `json:"vertex"`
	Value  float64 `json:"value"`
}

// JobResult is the GET /jobs/{id}/result payload: the top-K vertices by
// value (descending; K via ?top, default 10), a single vertex's value
// (?vertex), or the full vector (?all=1), always in original vertex IDs.
type JobResult struct {
	ID         string        `json:"id"`
	Algo       string        `json:"algo"`
	State      JobState      `json:"state"`
	Iterations int           `json:"iterations"`
	Top        []VertexValue `json:"top,omitempty"`
	Vertex     *VertexValue  `json:"vertex,omitempty"`
	All        []VertexValue `json:"all,omitempty"`
}

// Result extracts a finished job's values. top <= 0 means 10; vertex,
// when non-nil, selects one original-ID vertex instead; all dumps the
// whole vector.
func (s *Server) Result(id string, top int, vertex *uint32, all bool) (JobResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobResult{}, fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	if j.state != StateDone {
		return JobResult{}, fmt.Errorf("%w: job %s is %s, results exist only for done jobs", ErrBadRequest, id, j.state)
	}
	out := JobResult{ID: j.ID, Algo: string(j.Algo), State: j.state, Iterations: j.result.Iterations}
	switch {
	case vertex != nil:
		old := graph.VertexID(*vertex)
		if !j.rg.old[old] {
			return JobResult{}, fmt.Errorf("%w: vertex %d not in graph %q", ErrBadRequest, old, j.Graph)
		}
		out.Vertex = &VertexValue{Vertex: uint32(old), Value: j.values[j.rg.o2n[old]]}
	case all:
		out.All = make([]VertexValue, len(j.values))
		for newID, v := range j.values {
			out.All[newID] = VertexValue{Vertex: uint32(j.rg.n2o[newID]), Value: v}
		}
		sort.Slice(out.All, func(a, b int) bool { return out.All[a].Vertex < out.All[b].Vertex })
	default:
		if top <= 0 {
			top = 10
		}
		if top > len(j.values) {
			top = len(j.values)
		}
		idx := make([]int, len(j.values))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			if j.values[idx[a]] != j.values[idx[b]] {
				return j.values[idx[a]] > j.values[idx[b]]
			}
			return idx[a] < idx[b] // deterministic ties
		})
		out.Top = make([]VertexValue, top)
		for i := 0; i < top; i++ {
			out.Top[i] = VertexValue{Vertex: uint32(j.rg.n2o[idx[i]]), Value: j.values[idx[i]]}
		}
	}
	return out, nil
}

// Report returns a finished job's RunReport profiling artifact.
func (s *Server) Report(id string) (*obs.RunReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	if j.report == nil {
		return nil, fmt.Errorf("%w: job %s is %s, no report", ErrBadRequest, id, j.state)
	}
	return j.report, nil
}
