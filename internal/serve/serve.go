// Package serve is the resident multi-tenant analytics server: it loads
// degree-ordered graphs once into the immutable shared representation
// (core.SharedGraph) and runs concurrent algorithm jobs against them,
// each job a private engine over a shared adjacency cache. The cost a
// one-shot CLI run pays per invocation — opening the graph, decoding
// blocks, warming the cache — is paid once per resident graph here,
// which is the ROADMAP's serving story (and GraphH's ALLIGATOR model:
// one shared immutable graph store, many computations).
//
// Admission is budget-driven: every job declares a memory budget, the
// server admits jobs while the sum of running budgets plus the resident
// graph bytes stays within the server-wide budget, and queues the rest
// in submission order (bounded FIFO, strict head-of-line: a large job at
// the head is never overtaken by a small one behind it). See
// docs/SERVING.md for the API and the budget math.
package serve

import (
	"errors"
	"fmt"
	"sync"

	"graphz/internal/core"
	"graphz/internal/dos"
	"graphz/internal/graph"
	"graphz/internal/obs"
)

// Typed error classes the HTTP layer maps to status codes. Match with
// errors.Is.
var (
	// ErrBadRequest marks submissions the caller must fix: unknown
	// graph or algorithm, a source vertex outside the graph, a budget
	// no admission order could ever satisfy. HTTP 400.
	ErrBadRequest = errors.New("serve: bad request")
	// ErrQueueFull reports the bounded admission queue is at capacity;
	// retry later. HTTP 503.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrNotFound reports an unknown job or graph name in the URL.
	// HTTP 404.
	ErrNotFound = errors.New("serve: not found")
)

// Config sizes the server.
type Config struct {
	// MemoryBudget is the server-wide byte budget covering the resident
	// graphs (index + block table + decoded adjacency) plus the sum of
	// running jobs' engine budgets. Required.
	MemoryBudget int64
	// DefaultJobBudget is assigned to submissions that omit a budget;
	// defaults to 1/8 of MemoryBudget.
	DefaultJobBudget int64
	// QueueLimit bounds the FIFO admission queue; defaults to 16.
	QueueLimit int
	// Reg receives the server-level metrics (job gauges, budget gauges,
	// per-job labeled series). Nil allocates a private registry.
	Reg *obs.Registry
}

// residentGraph is one loaded graph plus the ID maps the API needs:
// jobs run in degree-ordered (new) vertex-ID space, clients speak the
// input's original (old) IDs.
type residentGraph struct {
	name string
	sg   *core.SharedGraph
	n2o  []graph.VertexID // new → old
	o2n  []graph.VertexID // old → new (len MaxOldID+1; entries for absent IDs unused)
	old  map[graph.VertexID]bool
}

// Server owns the resident graphs, the job table, and the admission
// state. Create with New, add graphs with RegisterGraph, expose
// Handler() over HTTP.
type Server struct {
	cfg Config
	reg *obs.Registry

	mu       sync.Mutex
	graphs   map[string]*residentGraph
	order    []string // graph registration order
	jobs     map[string]*Job
	jobOrder []*Job
	queue    []*Job
	running  int
	inUse    int64 // sum of running jobs' budgets
	resident int64 // sum of registered graphs' ResidentBytes
	nextID   int

	// beforeRun, when set (tests only), is called on the job goroutine
	// after admission and before the engine starts.
	beforeRun func(*Job)
}

// New builds an empty server; register graphs before serving.
func New(cfg Config) (*Server, error) {
	if cfg.MemoryBudget <= 0 {
		return nil, fmt.Errorf("%w: server memory budget must be positive, got %d", ErrBadRequest, cfg.MemoryBudget)
	}
	if cfg.DefaultJobBudget <= 0 {
		cfg.DefaultJobBudget = cfg.MemoryBudget / 8
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 16
	}
	if cfg.Reg == nil {
		cfg.Reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:    cfg,
		reg:    cfg.Reg,
		graphs: make(map[string]*residentGraph),
		jobs:   make(map[string]*Job),
	}
	s.reg.Gauge("graphz_serve_budget_total_bytes").Set(cfg.MemoryBudget)
	s.updateGaugesLocked()
	return s, nil
}

// Registry returns the server's metrics registry (the /metrics source).
func (s *Server) Registry() *obs.Registry { return s.reg }

// RegisterGraph makes a loaded degree-ordered graph resident under name.
// Its ResidentBytes (index + block table + adjacency cache, whether or
// not the cache has been filled yet) are reserved against the server
// budget immediately — admission must never discover them mid-run.
func (s *Server) RegisterGraph(name string, g *dos.Graph) error {
	if name == "" {
		return fmt.Errorf("%w: empty graph name", ErrBadRequest)
	}
	sg := core.NewSharedGraph(g)
	n2o, err := g.NewToOld()
	if err != nil {
		return fmt.Errorf("serve: loading %s ID map: %w", name, err)
	}
	o2n, err := g.OldToNew()
	if err != nil {
		return fmt.Errorf("serve: loading %s ID map: %w", name, err)
	}
	old := make(map[graph.VertexID]bool, len(n2o))
	for _, v := range n2o {
		old[v] = true
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.graphs[name]; dup {
		return fmt.Errorf("%w: graph %q already registered", ErrBadRequest, name)
	}
	rb := sg.ResidentBytes()
	if s.resident+rb > s.cfg.MemoryBudget {
		return fmt.Errorf("%w: graph %q needs %d resident bytes, %d of %d budget free",
			ErrBadRequest, name, rb, s.cfg.MemoryBudget-s.resident, s.cfg.MemoryBudget)
	}
	s.graphs[name] = &residentGraph{name: name, sg: sg, n2o: n2o, o2n: o2n, old: old}
	s.order = append(s.order, name)
	s.resident += rb
	s.updateGaugesLocked()
	return nil
}

// GraphInfo describes one resident graph over the API.
type GraphInfo struct {
	Name          string `json:"name"`
	Vertices      int    `json:"vertices"`
	Edges         int64  `json:"edges"`
	ResidentBytes int64  `json:"resident_bytes"`
	AdjacencyHot  bool   `json:"adjacency_hot"` // decoded cache filled
}

// Graphs lists the resident graphs in registration order.
func (s *Server) Graphs() []GraphInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]GraphInfo, 0, len(s.order))
	for _, name := range s.order {
		g := s.graphs[name]
		out = append(out, GraphInfo{
			Name:          name,
			Vertices:      g.sg.Graph().NumVertices,
			Edges:         g.sg.Graph().NumEdges,
			ResidentBytes: g.sg.ResidentBytes(),
			AdjacencyHot:  g.sg.Adjacency().Filled(),
		})
	}
	return out
}

// Stats is the server-level accounting snapshot.
type Stats struct {
	MemoryBudget  int64 `json:"memory_budget"`
	ResidentBytes int64 `json:"resident_bytes"`
	BudgetInUse   int64 `json:"budget_in_use"` // running jobs' budgets
	JobsRunning   int   `json:"jobs_running"`
	JobsQueued    int   `json:"jobs_queued"`
	JobsTotal     int   `json:"jobs_total"`
	Graphs        int   `json:"graphs"`
}

// Stats returns the current accounting snapshot.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		MemoryBudget:  s.cfg.MemoryBudget,
		ResidentBytes: s.resident,
		BudgetInUse:   s.inUse,
		JobsRunning:   s.running,
		JobsQueued:    len(s.queue),
		JobsTotal:     len(s.jobs),
		Graphs:        len(s.graphs),
	}
}

// updateGaugesLocked refreshes the server-level gauges. Caller holds mu
// (or is the constructor).
func (s *Server) updateGaugesLocked() {
	s.reg.Gauge("graphz_serve_jobs_running").Set(int64(s.running))
	s.reg.Gauge("graphz_serve_jobs_queued").Set(int64(len(s.queue)))
	s.reg.Gauge("graphz_serve_budget_used_bytes").Set(s.resident + s.inUse)
	s.reg.Gauge("graphz_serve_resident_bytes").Set(s.resident)
}

// pumpLocked admits queued jobs in strict FIFO order while the head fits
// the free budget: resident + inUse + head.Budget <= MemoryBudget. It
// stops at the first head that does not fit — a large job is never
// starved by smaller ones behind it. Caller holds mu.
func (s *Server) pumpLocked() {
	for len(s.queue) > 0 {
		j := s.queue[0]
		if s.resident+s.inUse+j.Budget > s.cfg.MemoryBudget {
			break
		}
		s.queue = s.queue[1:]
		s.inUse += j.Budget
		s.running++
		j.setRunning()
		go s.run(j)
	}
	s.updateGaugesLocked()
}

// release returns a finished job's budget and admits what now fits.
func (s *Server) release(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inUse -= j.Budget
	s.running--
	s.pumpLocked()
}
