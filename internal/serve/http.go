package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// Handler returns the server's HTTP API (docs/SERVING.md):
//
//	POST   /jobs             submit a job (SubmitRequest JSON)
//	GET    /jobs             list all jobs
//	GET    /jobs/{id}        one job's status
//	GET    /jobs/{id}/result values (?top=N | ?vertex=V | ?all=1)
//	GET    /jobs/{id}/report the job's RunReport artifact
//	DELETE /jobs/{id}        cancel
//	GET    /graphs           resident graphs
//	GET    /stats            admission/budget snapshot
//	GET    /metrics          Prometheus text (server + per-job series)
//	GET    /healthz          liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Job(r.PathValue("id"))
		respond(w, st, err)
	})
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		rep, err := s.Report(r.PathValue("id"))
		respond(w, rep, err)
	})
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Cancel(r.PathValue("id"))
		respond(w, st, err)
	})
	mux.HandleFunc("GET /graphs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Graphs())
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.Handle("GET /metrics", s.reg.MetricsHandler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n")) //nolint:errcheck
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errBody{Error: "invalid JSON: " + err.Error()})
		return
	}
	st, err := s.Submit(req)
	if err != nil {
		respond(w, nil, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	top := 0
	if t := q.Get("top"); t != "" {
		n, err := strconv.Atoi(t)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest, errBody{Error: "top must be a positive integer"})
			return
		}
		top = n
	}
	var vertex *uint32
	if v := q.Get("vertex"); v != "" {
		n, err := strconv.ParseUint(v, 10, 32)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errBody{Error: "vertex must be a uint32"})
			return
		}
		u := uint32(n)
		vertex = &u
	}
	res, err := s.Result(r.PathValue("id"), top, vertex, q.Get("all") == "1")
	respond(w, res, err)
}

type errBody struct {
	Error string `json:"error"`
}

// respond maps the typed error classes to HTTP statuses and writes the
// payload (or the error body).
func respond(w http.ResponseWriter, payload any, err error) {
	if err == nil {
		writeJSON(w, http.StatusOK, payload)
		return
	}
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, ErrQueueFull):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone mid-write
}
