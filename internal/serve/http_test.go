package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// doJSON issues a request against the test server and decodes the JSON
// response into out (skipped when out is nil), returning the status.
func doJSON(t *testing.T, client *http.Client, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func TestHTTPAPI(t *testing.T) {
	g, _ := buildGraph(t, 96)
	s := newServer(t, 256<<20, g)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	// Graphs and health up front.
	var graphs []GraphInfo
	if code := doJSON(t, c, "GET", ts.URL+"/graphs", nil, &graphs); code != 200 {
		t.Fatalf("GET /graphs = %d", code)
	}
	if len(graphs) != 1 || graphs[0].Name != "main" || graphs[0].AdjacencyHot {
		t.Fatalf("graphs = %+v", graphs)
	}
	if resp, err := c.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v", err)
	}

	// Submit BFS, poll to done.
	var st JobStatus
	if code := doJSON(t, c, "POST", ts.URL+"/jobs",
		SubmitRequest{Graph: "main", Algo: "bfs", Budget: 8 << 20}, &st); code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d", code)
	}
	if st.ID == "" {
		t.Fatal("no job ID")
	}
	deadline := time.Now().Add(10 * time.Second)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
		doJSON(t, c, "GET", ts.URL+"/jobs/"+st.ID, nil, &st)
	}
	if st.State != StateDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}

	// Result views: top, single vertex, full vector.
	var res JobResult
	if code := doJSON(t, c, "GET", ts.URL+"/jobs/"+st.ID+"/result?top=3", nil, &res); code != 200 {
		t.Fatalf("result = %d", code)
	}
	if len(res.Top) != 3 {
		t.Fatalf("top = %+v", res.Top)
	}
	if code := doJSON(t, c, "GET", ts.URL+"/jobs/"+st.ID+"/result?vertex="+
		u32s(res.Top[0].Vertex), nil, &res); code != 200 || res.Vertex == nil {
		t.Fatalf("vertex query failed: %d %+v", code, res)
	}
	if code := doJSON(t, c, "GET", ts.URL+"/jobs/"+st.ID+"/result?all=1", nil, &res); code != 200 {
		t.Fatalf("all = %d", code)
	}
	if len(res.All) != graphs[0].Vertices {
		t.Fatalf("all returned %d values, graph has %d vertices", len(res.All), graphs[0].Vertices)
	}

	// RunReport over the API.
	var report map[string]any
	if code := doJSON(t, c, "GET", ts.URL+"/jobs/"+st.ID+"/report", nil, &report); code != 200 {
		t.Fatalf("report = %d", code)
	}
	if report["engine"] != "graphz-serve" || report["schema"] == nil {
		t.Fatalf("report engine = %v, schema = %v", report["engine"], report["schema"])
	}

	// Job list, stats, metrics.
	var jobs []JobStatus
	doJSON(t, c, "GET", ts.URL+"/jobs", nil, &jobs)
	if len(jobs) != 1 || jobs[0].ID != st.ID {
		t.Fatalf("jobs = %+v", jobs)
	}
	var stats Stats
	doJSON(t, c, "GET", ts.URL+"/stats", nil, &stats)
	if stats.Graphs != 1 || stats.JobsTotal != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	resp, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"graphz_serve_jobs_running",
		"graphz_serve_budget_total_bytes",
		`graphz_serve_jobs_finished_total{state="done"} 1`,
		`job="` + st.ID + `"`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Error mapping: 404, 400, invalid JSON.
	var eb errBody
	if code := doJSON(t, c, "GET", ts.URL+"/jobs/job-999999", nil, &eb); code != 404 {
		t.Errorf("unknown job = %d", code)
	}
	if code := doJSON(t, c, "POST", ts.URL+"/jobs",
		SubmitRequest{Graph: "main", Algo: "nope"}, &eb); code != 400 {
		t.Errorf("bad algo = %d", code)
	}
	if code := doJSON(t, c, "GET", ts.URL+"/jobs/"+st.ID+"/result?top=-1", nil, &eb); code != 400 {
		t.Errorf("bad top = %d", code)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/jobs", strings.NewReader("{nope"))
	r2, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != 400 {
		t.Errorf("invalid JSON = %d", r2.StatusCode)
	}

	// Cancel over HTTP: terminal job → no-op with final state.
	var cst JobStatus
	if code := doJSON(t, c, "DELETE", ts.URL+"/jobs/"+st.ID, nil, &cst); code != 200 || cst.State != StateDone {
		t.Errorf("cancel terminal job: %d %+v", code, cst)
	}
}

func u32s(v uint32) string { return strconv.FormatUint(uint64(v), 10) }
