GO ?= go

.PHONY: build test check fmt vet race bench bench-json benchdiff cover smoke fuzz-short run-report

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/core/... ./internal/obs/... ./internal/checkpoint/... ./internal/storage/... ./internal/bench/... ./internal/serve/...

bench:
	$(GO) test -bench BenchmarkEngine -benchmem -run '^$$' ./internal/core/

# bench-json records the engine and codec benchmarks as a JSON snapshot
# for the CI regression gate; benchdiff compares it to the committed
# baseline.
bench-json:
	{ $(GO) test -bench BenchmarkEngine -benchmem -run '^$$' ./internal/core/ ; \
	  $(GO) test -bench BenchmarkCodec -benchmem -run '^$$' ./internal/storage/ ; } \
		| $(GO) run ./cmd/graphz-benchdiff -record -out BENCH_core.json

benchdiff: bench-json
	$(GO) run ./cmd/graphz-benchdiff -baseline ci/bench-baseline.json -current BENCH_core.json -threshold 0.15

cover:
	$(GO) test -coverprofile=cover.out ./internal/...
	$(GO) tool cover -func=cover.out | tail -1

# smoke runs the randomized crash-recovery property tests (engines killed
# at random device operations must resume to byte-identical results), a
# run-report round trip (a profiled run writes its artifact, and
# graphz-report must render and self-diff it cleanly), the semi-external
# differential at the exec level (the same generated graph run with
# -sem on and -sem off must print byte-identical results, and the SEM
# run's report must render), and the graphz-serve end-to-end session:
# boot on a free port, submit BFS and PageRank jobs, poll to completion,
# fetch results and reports, cancel, and drain on SIGINT.
smoke:
	$(GO) test -run 'TestCrashRecovery' -count=1 -v ./internal/core/
	$(GO) run ./cmd/graphz-run -gen rmat -gen-scale 8 -gen-edges 2000 -seed 7 -algo cc -report RUNREPORT_smoke.json
	$(GO) run ./cmd/graphz-report show RUNREPORT_smoke.json
	$(GO) run ./cmd/graphz-report diff RUNREPORT_smoke.json RUNREPORT_smoke.json
	$(GO) run ./cmd/graphz-run -gen zipf -gen-vertices 4000 -gen-edges 30000 -seed 9 -algo cc -sem on -top 20 -report RUNREPORT_sem.json | grep -A20 'top 20 vertices' > SEM_on.txt
	$(GO) run ./cmd/graphz-run -gen zipf -gen-vertices 4000 -gen-edges 30000 -seed 9 -algo cc -sem off -top 20 | grep -A20 'top 20 vertices' > SEM_off.txt
	diff SEM_on.txt SEM_off.txt && rm -f SEM_on.txt SEM_off.txt
	$(GO) run ./cmd/graphz-report show RUNREPORT_sem.json
	$(GO) test -run 'TestServe' -count=1 -v ./cmd/graphz-serve/

# run-report emits the reference profiled run's artifact (stage totals,
# memory timeline, block heatmap) for the CI bench job to upload next to
# the benchmark snapshot. Inspect with `graphz-report show`, compare two
# revisions with `graphz-report diff`.
run-report:
	$(GO) run ./cmd/graphz-run -gen rmat -gen-scale 10 -gen-edges 8192 -seed 7 -algo pr -report RUNREPORT_run.json
	$(GO) run ./cmd/graphz-report show RUNREPORT_run.json

# fuzz-short gives each DOS parser and codec fuzz target a bounded
# budget — 10s locally, FUZZTIME=30s in the CI fuzz job (which also
# caches the generated corpus across runs). The checked-in seed corpora
# under internal/dos/testdata and internal/storage/testdata replay on
# every plain `go test` run regardless.
FUZZTIME ?= 10s
fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzMetaParse$$' -fuzztime $(FUZZTIME) ./internal/dos/
	$(GO) test -run '^$$' -fuzz '^FuzzEdgesDecode$$' -fuzztime $(FUZZTIME) ./internal/dos/
	$(GO) test -run '^$$' -fuzz '^FuzzVerify$$' -fuzztime $(FUZZTIME) ./internal/dos/
	$(GO) test -run '^$$' -fuzz '^FuzzGroupVarintDecode$$' -fuzztime $(FUZZTIME) ./internal/storage/
	$(GO) test -run '^$$' -fuzz '^FuzzGroupVarintRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/storage/

check: fmt vet race test
