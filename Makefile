GO ?= go

.PHONY: build test check fmt vet race bench smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/core/... ./internal/obs/... ./internal/checkpoint/... ./internal/storage/...

bench:
	$(GO) test -bench BenchmarkEngine -benchmem -run '^$$' ./internal/core/

# smoke runs the randomized crash-recovery property tests: engines killed
# at random device operations must resume to byte-identical results.
smoke:
	$(GO) test -run 'TestCrashRecovery' -count=1 -v ./internal/core/

check: fmt vet race
