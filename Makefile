GO ?= go

.PHONY: build test check fmt vet race bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/core/... ./internal/obs/...

bench:
	$(GO) test -bench BenchmarkEngine -benchmem -run '^$$' ./internal/core/

check: fmt vet race
