GO ?= go

.PHONY: build test check fmt vet race bench bench-json benchdiff cover smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/core/... ./internal/obs/... ./internal/checkpoint/... ./internal/storage/... ./internal/bench/...

bench:
	$(GO) test -bench BenchmarkEngine -benchmem -run '^$$' ./internal/core/

# bench-json records the engine benchmarks as a JSON snapshot for the
# CI regression gate; benchdiff compares it to the committed baseline.
bench-json:
	$(GO) test -bench BenchmarkEngine -benchmem -run '^$$' ./internal/core/ \
		| $(GO) run ./cmd/graphz-benchdiff -record -out BENCH_core.json

benchdiff: bench-json
	$(GO) run ./cmd/graphz-benchdiff -baseline ci/bench-baseline.json -current BENCH_core.json -threshold 0.15

cover:
	$(GO) test -coverprofile=cover.out ./internal/...
	$(GO) tool cover -func=cover.out | tail -1

# smoke runs the randomized crash-recovery property tests: engines killed
# at random device operations must resume to byte-identical results.
smoke:
	$(GO) test -run 'TestCrashRecovery' -count=1 -v ./internal/core/

check: fmt vet race test
