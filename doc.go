// Package graphz is a from-scratch Go reproduction of "GraphZ: Improving
// the Performance of Large-Scale Graph Analytics on Small-Scale Machines"
// (Zhou & Hoffmann, ICDE 2018): an out-of-core graph analytics framework
// built on degree-ordered storage and ordered dynamic messages, together
// with GraphChi-class and X-Stream-class baselines, six benchmark
// algorithms per engine, a simulated HDD/SSD storage substrate, and a
// harness that regenerates every table and figure of the paper's
// evaluation.
//
// The implementation lives under internal/; the runnable entry points are
// the commands under cmd/ and the examples under examples/. See README.md
// for a tour, DESIGN.md for the system inventory, and EXPERIMENTS.md for
// paper-versus-measured results.
package graphz
