#!/usr/bin/env sh
# covgate.sh FLOOR PKG [PKG...] — run `go test -cover` on the packages
# and fail if any reports statement coverage below FLOOR percent.
# Emits GitHub Actions ::error annotations per failing package, so the
# same script works locally (plain text) and in CI (annotated).
set -eu

if [ "$#" -lt 2 ]; then
    echo "usage: $0 FLOOR PKG [PKG...]" >&2
    exit 2
fi
floor=$1
shift

out=$(go test -cover "$@")
echo "$out"
echo "$out" | awk -v floor="$floor" '/coverage:/ {
    pct = $0; sub(/.*coverage: /, "", pct); sub(/%.*/, "", pct)
    if (pct + 0 < floor + 0) {
        printf "::error::%s coverage %s%% is below the %s%% floor\n", $2, pct, floor
        fail = 1
    }
} END { exit fail }'
