// Command graphz-convert converts a raw binary edge list into
// degree-ordered storage (the paper's Section III format) and reports the
// index statistics. The conversion runs through the simulated device so
// its IO cost is measured; the resulting DOS files are then exported next
// to the input as <prefix>.edges, <prefix>.meta, <prefix>.new2old, and
// <prefix>.old2new.
//
// Usage:
//
//	graphz-convert -in graph.bin -prefix graph.dos [-device ssd] [-budget 8388608] [-codec varint]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"graphz/internal/dos"
	"graphz/internal/sim"
	"graphz/internal/storage"
)

func main() {
	var (
		in     = flag.String("in", "", "input raw edge file (required)")
		prefix = flag.String("prefix", "", "output prefix (default: input path without extension)")
		device = flag.String("device", "ssd", "simulated device for cost accounting: hdd or ssd")
		budget = flag.Int64("budget", 8<<20, "conversion memory budget in bytes")
		codec  = flag.String("codec", "", "adjacency block codec for the DOS v2 format "+
			"("+strings.Join(storage.CodecNames(), ", ")+"); empty writes the v1 format")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "graphz-convert: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if *prefix == "" {
		ext := filepath.Ext(*in)
		*prefix = (*in)[:len(*in)-len(ext)] + ".dos"
	}
	kind := storage.SSD
	if *device == "hdd" {
		kind = storage.HDD
	}
	var blockCodec storage.Codec
	if *codec != "" {
		var err error
		if blockCodec, err = storage.CodecByName(*codec); err != nil {
			fatal(err)
		}
	}

	raw, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	clock := sim.NewClock()
	dev := storage.NewDevice(kind, storage.Options{Clock: clock})
	if err := storage.WriteAll(dev, "raw", raw); err != nil {
		fatal(err)
	}
	dev.ResetStats()

	g, err := dos.Convert(dos.ConvertConfig{Dev: dev, Clock: clock, MemoryBudget: *budget, Codec: blockCodec}, "raw", "g")
	if err != nil {
		fatal(err)
	}
	if err := dos.Verify(g); err != nil {
		fatal(fmt.Errorf("conversion self-check failed: %w", err))
	}

	// Export the DOS files to the host filesystem.
	for devName, hostSuffix := range map[string]string{
		"g.edges": ".edges", "g.meta": ".meta",
		"g.new2old": ".new2old", "g.old2new": ".old2new",
	} {
		data, err := storage.ReadAllFile(dev, devName)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*prefix+hostSuffix, data, 0o644); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("converted %s -> %s.{edges,meta,new2old,old2new}\n", *in, *prefix)
	fmt.Printf("  vertices:        %d (max original ID %d)\n", g.NumVertices, g.MaxOldID)
	fmt.Printf("  edges:           %d\n", g.NumEdges)
	fmt.Printf("  unique degrees:  %d\n", g.UniqueDegrees())
	if g.Version() == 2 {
		edgeBytes, err := dev.Size(g.EdgesFile())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  format:          v2, %s codec, %d bytes of edges (raw would be %d, %.2fx), %d-byte block table\n",
			g.Codec().Name(), edgeBytes, g.NumEdges*dos.EntryBytes,
			safeRatio(g.NumEdges*dos.EntryBytes, edgeBytes), g.BlockTableBytes())
	}
	fmt.Printf("  vertex index:    %d bytes (CSR would need %d bytes, %.0fx more)\n",
		g.IndexBytes(), int64(g.MaxOldID+1)*8,
		float64(int64(g.MaxOldID+1)*8)/float64(g.IndexBytes()))
	fmt.Printf("  modeled %s time: %v (compute %v, IO %v)\n",
		kind, clock.Total(), clock.TotalCompute(), clock.TotalIO())
	fmt.Printf("  device traffic:  %v\n", dev.Stats())
}

func safeRatio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphz-convert:", err)
	os.Exit(1)
}
