// Command graphz-serve is the resident analytics daemon: it loads one or
// more graphs into degree-ordered storage once, keeps the decoded
// adjacency shared in memory, and serves concurrent algorithm jobs over
// an HTTP/JSON API with budget-driven admission control (docs/SERVING.md).
//
// Usage:
//
//	graphz-serve -addr :8090 -gen social=rmat,scale=12,edges=40000,seed=7
//	graphz-serve -in web=crawl.bin -codec varint -budget 268435456
//	graphz-serve -graph road=./road-dos -addr 127.0.0.1:0
//
// Then:
//
//	curl -X POST localhost:8090/jobs -d '{"graph":"social","algo":"bfs"}'
//	curl localhost:8090/jobs/job-000001
//	curl localhost:8090/jobs/job-000001/result?top=5
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"graphz/internal/dos"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/obs"
	"graphz/internal/serve"
	"graphz/internal/storage"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, " ") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var genSpecs, inSpecs, graphSpecs multiFlag
	var (
		addr   = flag.String("addr", "127.0.0.1:8090", "listen address (use :0 for a free port)")
		budget = flag.Int64("budget", 256<<20, "server-wide memory budget in bytes (resident graphs + running job budgets)")
		jobB   = flag.Int64("job-budget", 0, "default per-job engine budget when a submission omits one (default budget/8)")
		queue  = flag.Int("queue", 16, "admission queue limit")
		device = flag.String("device", "ssd", "simulated device for the resident graphs: hdd or ssd")
		codec  = flag.String("codec", "varint", "adjacency block codec for converted graphs: raw, varint, or v1 for fixed entries")
		drain  = flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown drain window on SIGINT/SIGTERM")
	)
	flag.Var(&genSpecs, "gen", "generated graph, repeatable: name=kind[,scale=N][,vertices=N][,edges=N][,s=F][,seed=N] with kind rmat, zipf, er, or grid")
	flag.Var(&inSpecs, "in", "raw edge-list graph, repeatable: name=path")
	flag.Var(&graphSpecs, "graph", "pre-converted graph from graphz-convert, repeatable: name=prefix")
	flag.Parse()

	if len(genSpecs)+len(inSpecs)+len(graphSpecs) == 0 {
		fmt.Fprintln(os.Stderr, "graphz-serve: at least one -gen, -in, or -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	kind := storage.SSD
	if *device == "hdd" {
		kind = storage.HDD
	}

	s, err := serve.New(serve.Config{MemoryBudget: *budget, DefaultJobBudget: *jobB, QueueLimit: *queue})
	if err != nil {
		fatal(err)
	}
	dev := storage.NewDevice(kind, storage.Options{})
	for _, spec := range graphSpecs {
		name, prefix, err := splitSpec(spec)
		if err != nil {
			fatal(err)
		}
		g, err := importConverted(dev, name, prefix)
		if err != nil {
			fatal(fmt.Errorf("-graph %s: %w", spec, err))
		}
		register(s, name, g)
	}
	for _, spec := range inSpecs {
		name, path, err := splitSpec(spec)
		if err != nil {
			fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		if err := storage.WriteAll(dev, name+".raw", raw); err != nil {
			fatal(err)
		}
		register(s, name, convert(dev, name, *codec, *budget))
	}
	for _, spec := range genSpecs {
		name, edges, err := generate(spec)
		if err != nil {
			fatal(fmt.Errorf("-gen %s: %w", spec, err))
		}
		if err := graph.WriteEdges(dev, name+".raw", edges); err != nil {
			fatal(err)
		}
		register(s, name, convert(dev, name, *codec, *budget))
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(l) //nolint:errcheck // Serve always returns on Shutdown/Close

	for _, gi := range s.Graphs() {
		fmt.Printf("graphz-serve: graph %q resident: %d vertices, %d edges, %d B\n",
			gi.Name, gi.Vertices, gi.Edges, gi.ResidentBytes)
	}
	fmt.Printf("graphz-serve: serving on http://%s\n", l.Addr())

	ctx, stop := obs.SignalContext(context.Background())
	defer stop()
	<-ctx.Done()
	fmt.Println("graphz-serve: signal received, draining")
	// Stop taking requests first (bounded drain), then cancel whatever
	// is still running so engine goroutines exit promptly.
	if err := obs.DrainShutdown(srv, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "graphz-serve: drain:", err)
	}
	for _, j := range s.Jobs() {
		if !j.State.Terminal() {
			s.Cancel(j.ID) //nolint:errcheck // job may finish concurrently
		}
	}
	fmt.Println("graphz-serve: bye")
}

// register adds a loaded graph to the server or dies.
func register(s *serve.Server, name string, g *dos.Graph) {
	if err := s.RegisterGraph(name, g); err != nil {
		fatal(err)
	}
}

// convert runs the degree-ordered conversion of name.raw with the chosen
// block codec ("v1" keeps fixed 4-byte entries).
func convert(dev *storage.Device, name, codecName string, budget int64) *dos.Graph {
	cfg := dos.ConvertConfig{Dev: dev, MemoryBudget: budget / 4, RemoveInput: true}
	if codecName != "" && codecName != "v1" {
		c, err := storage.CodecByName(codecName)
		if err != nil {
			fatal(err)
		}
		cfg.Codec = c
	}
	g, err := dos.Convert(cfg, name+".raw", name+".dos")
	if err != nil {
		fatal(fmt.Errorf("converting %s: %w", name, err))
	}
	return g
}

// importConverted copies graphz-convert's exported host files onto the
// device under the graph's own prefix and loads them.
func importConverted(dev *storage.Device, name, prefix string) (*dos.Graph, error) {
	for _, suffix := range []string{".edges", ".meta", ".new2old", ".old2new"} {
		data, err := os.ReadFile(prefix + suffix)
		if err != nil {
			return nil, err
		}
		if err := storage.WriteAll(dev, name+".dos"+suffix, data); err != nil {
			return nil, err
		}
	}
	return dos.Load(dev, name+".dos")
}

// splitSpec parses "name=value".
func splitSpec(spec string) (name, value string, err error) {
	name, value, ok := strings.Cut(spec, "=")
	if !ok || name == "" || value == "" {
		return "", "", fmt.Errorf("graphz-serve: want name=value, got %q", spec)
	}
	return name, value, nil
}

// generate parses a -gen spec ("name=kind,k=v,...") and produces edges.
func generate(spec string) (string, []graph.Edge, error) {
	parts := strings.Split(spec, ",")
	name, kind, err := splitSpec(parts[0])
	if err != nil {
		return "", nil, err
	}
	params := map[string]uint64{"scale": 10, "vertices": 1024, "edges": 8192, "seed": 1}
	skew := 1.2
	for _, p := range parts[1:] {
		k, v, err := splitSpec(p)
		if err != nil {
			return "", nil, err
		}
		if k == "s" {
			skew, err = strconv.ParseFloat(v, 64)
			if err != nil {
				return "", nil, fmt.Errorf("bad %s: %w", p, err)
			}
			continue
		}
		if _, known := params[k]; !known {
			return "", nil, fmt.Errorf("unknown generator parameter %q", k)
		}
		params[k], err = strconv.ParseUint(v, 10, 64)
		if err != nil {
			return "", nil, fmt.Errorf("bad %s: %w", p, err)
		}
	}
	switch kind {
	case "rmat":
		return name, gen.RMAT(int(params["scale"]), int(params["edges"]), gen.NaturalRMAT, params["seed"]), nil
	case "zipf":
		return name, gen.Zipf(int(params["vertices"]), int(params["edges"]), skew, params["seed"]), nil
	case "er":
		return name, gen.ErdosRenyi(int(params["vertices"]), int(params["edges"]), params["seed"]), nil
	case "grid":
		return name, gen.Grid(int(params["vertices"]), int(params["vertices"])), nil
	}
	return "", nil, fmt.Errorf("unknown generator %q (want rmat, zipf, er, or grid)", kind)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphz-serve:", err)
	os.Exit(1)
}
