package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildServe compiles graphz-serve into a temp dir.
func buildServe(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds and execs the command")
	}
	bin := filepath.Join(t.TempDir(), "graphz-serve")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startServe boots the daemon on a free port and returns its base URL
// plus the running command. The caller must wait on done after killing.
func startServe(t *testing.T, bin string, extraArgs ...string) (url string, cmd *exec.Cmd, done chan error) {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-gen", "g=rmat,scale=9,edges=4000,seed=11",
	}, extraArgs...)
	cmd = exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done = make(chan error, 1)
	// Scan stdout for the serving line, then keep draining so the child
	// never blocks on a full pipe.
	lines := bufio.NewScanner(stdout)
	for lines.Scan() {
		line := lines.Text()
		if rest, ok := strings.CutPrefix(line, "graphz-serve: serving on "); ok {
			url = rest
			break
		}
	}
	if url == "" {
		cmd.Process.Kill() //nolint:errcheck
		cmd.Wait()         //nolint:errcheck
		t.Fatalf("no serving line; stderr:\n%s", stderr.String())
	}
	go func() {
		io.Copy(io.Discard, stdout) //nolint:errcheck
		done <- cmd.Wait()
	}()
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill() //nolint:errcheck
			<-done
		}
	})
	return url, cmd, done
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

func submit(t *testing.T, url, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(url+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit %s = %d: %v", body, resp.StatusCode, st)
	}
	return st
}

func waitTerminal(t *testing.T, url, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st map[string]any
		getJSON(t, url+"/jobs/"+id, &st)
		switch st["state"] {
		case "done", "failed", "cancelled":
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %v", id, st["state"])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeSmoke is the end-to-end session the Makefile smoke target
// runs: boot, submit BFS and PageRank, poll to completion, fetch results
// and reports, exercise cancel, shut down cleanly with SIGINT.
func TestServeSmoke(t *testing.T) {
	bin := buildServe(t)
	url, cmd, done := startServe(t, bin)

	var graphs []map[string]any
	if code := getJSON(t, url+"/graphs", &graphs); code != 200 || len(graphs) != 1 {
		t.Fatalf("graphs: %d %v", code, graphs)
	}

	bfs := submit(t, url, `{"graph":"g","algo":"bfs"}`)
	pr := submit(t, url, `{"graph":"g","algo":"pagerank","iterations":5}`)
	for _, id := range []string{bfs["id"].(string), pr["id"].(string)} {
		st := waitTerminal(t, url, id)
		if st["state"] != "done" {
			t.Fatalf("job %s: %v (%v)", id, st["state"], st["error"])
		}
	}

	// Second BFS must hit the shared adjacency: zero codec decodes.
	bfs2 := submit(t, url, `{"graph":"g","algo":"bfs"}`)
	st2 := waitTerminal(t, url, bfs2["id"].(string))
	if st2["state"] != "done" {
		t.Fatalf("warm bfs: %v (%v)", st2["state"], st2["error"])
	}
	if enc, ok := st2["codec_bytes_encoded"].(float64); !ok || enc != 0 {
		t.Errorf("warm job decoded %v codec bytes, want 0", st2["codec_bytes_encoded"])
	}

	var res map[string]any
	if code := getJSON(t, url+"/jobs/"+bfs["id"].(string)+"/result?top=5", &res); code != 200 {
		t.Fatalf("result = %d", code)
	}
	if top, _ := res["top"].([]any); len(top) != 5 {
		t.Fatalf("top = %v", res["top"])
	}
	var report map[string]any
	if code := getJSON(t, url+"/jobs/"+pr["id"].(string)+"/report", &report); code != 200 ||
		report["engine"] != "graphz-serve" {
		t.Fatalf("report: %d engine=%v", code, report["engine"])
	}

	// Cancel: submit then immediately DELETE; accept a natural finish if
	// the race goes the job's way, but the request itself must succeed.
	c := submit(t, url, `{"graph":"g","algo":"pagerank","iterations":50}`)
	req, _ := http.NewRequest("DELETE", url+"/jobs/"+c["id"].(string), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("cancel = %d", resp.StatusCode)
	}
	cst := waitTerminal(t, url, c["id"].(string))
	if s := cst["state"]; s != "cancelled" && s != "done" {
		t.Fatalf("cancelled job state = %v", s)
	}

	var metrics string
	{
		resp, err := http.Get(url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		metrics = string(b)
	}
	for _, want := range []string{"graphz_serve_budget_total_bytes", `state="done"`} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Graceful shutdown: SIGINT must produce a clean exit.
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("exit after SIGINT: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGINT")
	}
}

// TestServeRequiresGraph checks the no-graphs usage error path.
func TestServeRequiresGraph(t *testing.T) {
	bin := buildServe(t)
	out, err := exec.Command(bin, "-addr", "127.0.0.1:0").CombinedOutput()
	if err == nil {
		t.Fatalf("expected usage failure, got:\n%s", out)
	}
	if !strings.Contains(string(out), "at least one") {
		t.Fatalf("unexpected usage output:\n%s", out)
	}
}

// TestServeAdmissionOverHTTP boots with a budget that admits the graph
// but rejects oversized jobs with 400.
func TestServeAdmissionOverHTTP(t *testing.T) {
	bin := buildServe(t)
	url, _, _ := startServe(t, bin)

	var graphs []map[string]any
	getJSON(t, url+"/graphs", &graphs)
	resident := int64(graphs[0]["resident_bytes"].(float64))

	body := fmt.Sprintf(`{"graph":"g","algo":"bfs","budget":%d}`, 512<<20)
	resp, err := http.Post(url+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("oversized job (resident %d) = %d, want 400", resident, resp.StatusCode)
	}
}
