// Command graphz-gen generates synthetic graphs in the raw binary edge
// format (8 bytes per edge: little-endian u32 source, u32 destination)
// that graphz-convert and graphz-run consume.
//
// Usage:
//
//	graphz-gen -kind rmat -scale 16 -edges 1000000 -seed 7 -out graph.bin
//	graphz-gen -kind zipf -vertices 50000 -edges 500000 -s 0.9 -out graph.bin
//	graphz-gen -kind grid -rows 300 -cols 300 -out roads.bin
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"graphz/internal/gen"
	"graphz/internal/graph"
)

func main() {
	var (
		kind     = flag.String("kind", "rmat", "generator: rmat, zipf, er, grid")
		scale    = flag.Int("scale", 16, "rmat: log2 of the vertex ID space")
		vertices = flag.Int("vertices", 10000, "zipf/er: vertex count")
		edges    = flag.Int("edges", 100000, "rmat/zipf/er: edge count")
		zipfS    = flag.Float64("s", 0.9, "zipf: skew exponent")
		rows     = flag.Int("rows", 100, "grid: rows")
		cols     = flag.Int("cols", 100, "grid: columns")
		seed     = flag.Uint64("seed", 42, "generator seed")
		out      = flag.String("out", "", "output file (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "graphz-gen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	var es []graph.Edge
	switch *kind {
	case "rmat":
		es = gen.RMAT(*scale, *edges, gen.NaturalRMAT, *seed)
	case "zipf":
		es = gen.Zipf(*vertices, *edges, *zipfS, *seed)
	case "er":
		es = gen.ErdosRenyi(*vertices, *edges, *seed)
	case "grid":
		es = gen.Grid(*rows, *cols)
	default:
		fmt.Fprintf(os.Stderr, "graphz-gen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphz-gen:", err)
		os.Exit(1)
	}
	defer f.Close()
	buf := make([]byte, graph.EdgeBytes)
	for _, e := range es {
		binary.LittleEndian.PutUint32(buf[0:4], uint32(e.Src))
		binary.LittleEndian.PutUint32(buf[4:8], uint32(e.Dst))
		if _, err := f.Write(buf); err != nil {
			fmt.Fprintln(os.Stderr, "graphz-gen:", err)
			os.Exit(1)
		}
	}
	st := gen.Summarize(es)
	fmt.Printf("wrote %s: %d edges, %d vertices (max ID %d), %d unique degrees\n",
		*out, st.NumEdges, st.NumVertices, st.MaxID, st.UniqueDegrees)
}
