// Command graphz-bench regenerates the paper's evaluation: every table
// and figure of Section VI, printed as text tables. A full run covers all
// four graph scales and takes several minutes; -experiments selects a
// subset.
//
// Usage:
//
//	graphz-bench                          # everything
//	graphz-bench -experiments t11,t12,f5  # a subset
//	graphz-bench -list                    # show experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"graphz/internal/bench"
)

type experiment struct {
	id   string
	what string
	run  func() string
}

func experiments() []experiment {
	return []experiment{
		{"t1", "Table I: LOC to implement PageRank", bench.Table1},
		{"t2", "Table II: time to execute PageRank", bench.Table2},
		{"t8", "Table VIII: unique degrees of natural-graph analogs", bench.Table8},
		{"t9", "Table IX: LOC comparison of graph engines", bench.Table9},
		{"t10", "Table X: graph properties", bench.Table10},
		{"t11", "Table XI: vertex index size", bench.Table11},
		{"t12", "Table XII: preprocessing time", bench.Table12},
		{"f2", "Figure 2: in-partition message CDF", bench.Figure2},
		{"f5", "Figure 5: xlarge graph run times", bench.Figure5},
		{"f6s", "Figure 6: small graph run times", func() string { return bench.Figure6(bench.Small) }},
		{"f6m", "Figure 6: medium graph run times", func() string { return bench.Figure6(bench.Medium) }},
		{"f6l", "Figure 6: large graph run times", func() string { return bench.Figure6(bench.Large) }},
		{"f7", "Figure 7: performance breakdown", bench.Figure7},
		{"f8", "Figure 8: power and energy", bench.Figure8},
		{"t13", "Table XIII: relative energy", bench.Table13},
		{"t14", "Table XIV: iterations for convergence", bench.Table14},
		{"f9", "Figure 9: IO statistics", bench.Figure9},
		{"pc", "Extension: OS page-cache sensitivity", bench.PageCacheSensitivity},
	}
}

func main() {
	var (
		list = flag.Bool("list", false, "list experiment IDs and exit")
		sel  = flag.String("experiments", "", "comma-separated experiment IDs (default: all)")
	)
	flag.Parse()

	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-5s %s\n", e.id, e.what)
		}
		return
	}

	want := map[string]bool{}
	if *sel != "" {
		for _, id := range strings.Split(*sel, ",") {
			want[strings.TrimSpace(id)] = true
		}
		for id := range want {
			found := false
			for _, e := range exps {
				if e.id == id {
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "graphz-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
		}
	}

	start := time.Now()
	for _, e := range exps {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		t := time.Now()
		fmt.Println(e.run())
		fmt.Printf("[%s finished in %v]\n\n", e.id, time.Since(t).Round(time.Millisecond))
	}
	fmt.Printf("all experiments finished in %v\n", time.Since(start).Round(time.Millisecond))
}
