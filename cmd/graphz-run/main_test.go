package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmd compiles graphz-run once per test binary into a temp dir.
func buildCmd(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds and execs the command")
	}
	bin := filepath.Join(t.TempDir(), "graphz-run")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func runCmd(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("graphz-run %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

// topBlock isolates the result listing, the part that must be identical
// across reruns and resumes.
func topBlock(t *testing.T, out string) string {
	t.Helper()
	i := strings.Index(out, "  top ")
	if i < 0 {
		t.Fatalf("no top-vertices block in output:\n%s", out)
	}
	return out[i:]
}

// stripWallClock removes the per-iteration stage table: its columns are
// wall-clock measurements, the only nondeterministic part of the output.
// Everything else — modeled time, device stats, energy, results — is
// deterministic and must reproduce exactly.
func stripWallClock(out string) string {
	lines := strings.Split(out, "\n")
	kept := lines[:0]
	inTable := false
	for _, l := range lines {
		if strings.Contains(l, "per-iteration:") {
			inTable = true
			continue
		}
		if inTable && strings.HasPrefix(l, "    ") {
			continue
		}
		inTable = false
		kept = append(kept, l)
	}
	return strings.Join(kept, "\n")
}

func TestGeneratedRunReproducibleBySeed(t *testing.T) {
	bin := buildCmd(t)
	args := []string{"-gen", "rmat", "-gen-scale", "8", "-gen-edges", "1500", "-seed", "7", "-algo", "cc"}
	a := runCmd(t, bin, args...)
	b := runCmd(t, bin, args...)
	if stripWallClock(a) != stripWallClock(b) {
		t.Fatalf("same seed, different output:\n--- first\n%s--- second\n%s", a, b)
	}
	other := runCmd(t, bin, "-gen", "rmat", "-gen-scale", "8", "-gen-edges", "1500", "-seed", "8", "-algo", "cc")
	if topBlock(t, a) == topBlock(t, other) {
		t.Fatal("different seeds produced identical results")
	}
}

func TestCheckpointResumeMatches(t *testing.T) {
	bin := buildCmd(t)
	ckdir := filepath.Join(t.TempDir(), "ck")
	args := []string{"-gen", "rmat", "-gen-scale", "8", "-gen-edges", "1500", "-seed", "7", "-algo", "cc", "-checkpoint-dir", ckdir}
	first := runCmd(t, bin, args...)
	if !strings.Contains(first, "checkpoint: ") {
		t.Fatalf("no checkpoint summary in output:\n%s", first)
	}
	if ents, err := os.ReadDir(ckdir); err != nil || len(ents) == 0 {
		t.Fatalf("checkpoint dir empty (err=%v)", err)
	}
	resumed := runCmd(t, bin, append(args, "-resume")...)
	if !strings.Contains(resumed, "checkpoint: resuming from iteration ") {
		t.Fatalf("resume did not pick up the checkpoint:\n%s", resumed)
	}
	if topBlock(t, first) != topBlock(t, resumed) {
		t.Fatalf("resumed results differ:\n--- first\n%s--- resumed\n%s", first, resumed)
	}
}

func TestCheckpointFlagsRejectedForOtherEngines(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-gen", "grid", "-gen-vertices", "8", "-algo", "pr",
		"-engine", "xstream", "-checkpoint-dir", t.TempDir()).CombinedOutput()
	if err == nil {
		t.Fatalf("xstream with -checkpoint-dir should fail, got:\n%s", out)
	}
	if !strings.Contains(string(out), "-engine graphz") {
		t.Fatalf("unhelpful error:\n%s", out)
	}
}
