// Command graphz-run executes one of the six benchmark algorithms on a
// raw edge list with a chosen engine, reporting modeled runtime, IO, and
// energy. It is the quickest way to compare the engines on your own
// graph.
//
// Usage:
//
//	graphz-run -in graph.bin -algo pr -engine graphz [-device ssd] [-budget 8388608]
//	graphz-run -in graph.bin -algo bfs -engine xstream -source 12
//	graphz-run -in graph.bin -dos graph.dos -algo pr   # reuse graphz-convert output
//	graphz-run -gen rmat -gen-scale 12 -seed 7 -algo cc  # generated input, reproducible by seed
//	graphz-run -in graph.bin -algo pr -checkpoint-dir /tmp/ck   # durable run
//	graphz-run -in graph.bin -algo pr -checkpoint-dir /tmp/ck -resume  # continue after a crash
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"graphz/internal/algo/chialgo"
	"graphz/internal/algo/graphzalgo"
	"graphz/internal/algo/xsalgo"
	"graphz/internal/checkpoint"
	"graphz/internal/core"
	"graphz/internal/dos"
	"graphz/internal/energy"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/graphchi"
	"graphz/internal/obs"
	"graphz/internal/sim"
	"graphz/internal/storage"
	"graphz/internal/xstream"
)

// exitHooks run on every exit path — normal return and fatal() — so
// resources like the metrics server drain even when the run dies early.
var exitHooks []func()

func runExitHooks() {
	hooks := exitHooks
	exitHooks = nil
	for i := len(hooks) - 1; i >= 0; i-- {
		hooks[i]()
	}
}

func main() {
	defer runExitHooks()
	var (
		in      = flag.String("in", "", "input raw edge file (required)")
		algo    = flag.String("algo", "pr", "algorithm: pr, bfs, cc, sssp, bp, rw")
		engine  = flag.String("engine", "graphz", "engine: graphz, graphchi, xstream")
		device  = flag.String("device", "ssd", "simulated device: hdd or ssd")
		budget  = flag.Int64("budget", 8<<20, "memory budget in bytes")
		dosPfx  = flag.String("dos", "", "prefix of pre-converted DOS files from graphz-convert (graphz engine only; skips conversion)")
		iters   = flag.Int("iters", 10, "iterations for pr/bp/rw")
		source  = flag.Int("source", -1, "bfs/sssp source (original ID; default: max-degree vertex)")
		pdrain  = flag.Bool("parallel-drain", false, "graphz: apply pending messages with the mutex-pool worker pool")
		workers = flag.Int("workers", 1, "graphz: Worker-stage goroutines (deterministic chunked speculation; 1 = sequential)")
		cache   = flag.Bool("cache-adjacency", false, "graphz: keep adjacency resident when it fits the budget")
		sel     = flag.Bool("selective", false, "graphz: skip adjacency blocks with no active vertex and no pending message (selective block scheduling; see DESIGN.md §9)")
		sorted  = flag.Bool("sorted-spill", false, "graphz: sort spilled cross-partition messages by destination and merge-sort them at drain time (see DESIGN.md §11)")
		semF    = flag.String("sem", "auto", "graphz: semi-external-memory mode — auto (pin all vertex states resident when they fit the budget), on (force; fails if they don't fit), off (always partition); see DESIGN.md §13")
		comb    = flag.Bool("combine", false, "graphz: fold same-destination messages with the program's Combine hook (pr/bfs/cc/sssp; implies -sorted-spill)")
		top     = flag.Int("top", 5, "print the top-N result vertices")
		maddr   = flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof/ on this address while the run is live (e.g. :8080, or :0 for a free port)")
		traceTo = flag.String("trace", "", "write one JSONL span per (iteration, partition, stage) to this file")
		repTo   = flag.String("report", "", "write the run-report JSON artifact (stage totals, memory timeline, block heatmap; analyze with graphz-report) to this file")
		ckDir   = flag.String("checkpoint-dir", "", "graphz: write iteration-boundary checkpoints to this host directory (see docs/DURABILITY.md)")
		ckEvery = flag.Int("checkpoint-every", 1, "graphz: checkpoint after every Nth iteration (with -checkpoint-dir)")
		ckKeep  = flag.Int("checkpoint-keep", 2, "graphz: checkpoints to retain (with -checkpoint-dir)")
		resume  = flag.Bool("resume", false, "graphz: resume from the newest checkpoint in -checkpoint-dir; rerun with the same input (same -in, or same -gen and -seed) so the rebuilt graph matches")
		genKind = flag.String("gen", "", "generate the input instead of -in: rmat, zipf, er, or grid")
		genScl  = flag.Int("gen-scale", 10, "rmat generator: scale (2^scale vertices)")
		genV    = flag.Int("gen-vertices", 1024, "zipf/er generator: vertices; grid: side length")
		genE    = flag.Int("gen-edges", 8192, "rmat/zipf/er generator: edges")
		genS    = flag.Float64("gen-s", 1.2, "zipf generator: skew exponent")
		seed    = flag.Uint64("seed", 1, "generator seed; the same seed always yields the same graph and run")
	)
	flag.Parse()
	if (*in == "") == (*genKind == "") {
		fmt.Fprintln(os.Stderr, "graphz-run: exactly one of -in or -gen is required")
		flag.Usage()
		os.Exit(2)
	}
	if (*ckDir != "" || *resume) && *engine != "graphz" {
		fatal(fmt.Errorf("-checkpoint-dir/-resume need -engine graphz, got %q", *engine))
	}
	if (*sorted || *comb) && *engine != "graphz" {
		fatal(fmt.Errorf("-sorted-spill/-combine need -engine graphz, got %q", *engine))
	}
	semMode, err := core.ParseSemMode(*semF)
	if err != nil {
		fatal(err)
	}
	if semMode != core.SemAuto && *engine != "graphz" {
		fatal(fmt.Errorf("-sem needs -engine graphz, got %q", *engine))
	}
	if *resume && *ckDir == "" {
		fatal(fmt.Errorf("-resume needs -checkpoint-dir"))
	}
	kind := storage.SSD
	if *device == "hdd" {
		kind = storage.HDD
	}

	clock := sim.NewClock()
	dev := storage.NewDevice(kind, storage.Options{Clock: clock})
	if *in != "" {
		raw, err := os.ReadFile(*in)
		if err != nil {
			fatal(err)
		}
		if err := storage.WriteAll(dev, "raw", raw); err != nil {
			fatal(err)
		}
	} else {
		var genEdges []graph.Edge
		switch *genKind {
		case "rmat":
			genEdges = gen.RMAT(*genScl, *genE, gen.NaturalRMAT, *seed)
		case "zipf":
			genEdges = gen.Zipf(*genV, *genE, *genS, *seed)
		case "er":
			genEdges = gen.ErdosRenyi(*genV, *genE, *seed)
		case "grid":
			genEdges = gen.Grid(*genV, *genV)
		default:
			fatal(fmt.Errorf("unknown generator %q (want rmat, zipf, er, or grid)", *genKind))
		}
		if err := graph.WriteEdges(dev, "raw", genEdges); err != nil {
			fatal(err)
		}
	}

	edges, err := graph.ReadEdges(dev, "raw")
	if err != nil {
		fatal(err)
	}
	dev.ResetStats()
	src := graph.VertexID(0)
	if *source >= 0 {
		src = graph.VertexID(*source)
	} else {
		src = maxDegree(edges)
	}

	// Observability: the registry always collects (it also feeds the
	// post-run reports); a tracer and a live endpoint only on request.
	// -report needs the spans in memory, so it upgrades the tracer to a
	// collecting one (with -trace's file as the sink when both are set).
	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if *traceTo != "" || *repTo != "" {
		var sink io.Writer
		if *traceTo != "" {
			f, err := os.Create(*traceTo)
			if err != nil {
				fatal(err)
			}
			sink = f
		}
		if *repTo != "" {
			tracer = obs.NewCollectingTracer(sink)
		} else {
			tracer = obs.NewTracer(sink)
		}
	}
	if *maddr != "" {
		srv, err := obs.StartMetricsServer(*maddr, reg)
		if err != nil {
			fatal(err)
		}
		exitHooks = append(exitHooks, func() {
			if err := obs.DrainShutdown(srv, time.Second); err != nil {
				fmt.Fprintln(os.Stderr, "graphz-run: metrics drain:", err)
			}
		})
		fmt.Printf("metrics: serving /metrics and /debug/pprof/ on http://%s\n", srv.Addr())
	}

	// SIGINT/SIGTERM cancel the run at the next partition boundary
	// instead of killing the process mid-write.
	ctx, stop := obs.SignalContext(context.Background())
	defer stop()

	var (
		iterations int
		values     map[graph.VertexID]float64
	)
	switch *engine {
	case "graphz":
		if *dosPfx != "" {
			if err := importDOS(dev, *dosPfx); err != nil {
				fatal(err)
			}
		}
		ck := core.CheckpointOptions{Dir: *ckDir, Every: *ckEvery, Keep: *ckKeep, Resume: *resume}
		if *resume {
			if st, serr := checkpoint.NewStore(*ckDir); serr == nil && st.HasCheckpoint() {
				if latest, lerr := st.Latest(); lerr == nil {
					fmt.Printf("checkpoint: resuming from iteration %d in %s\n", latest.Manifest.Iteration, *ckDir)
				}
			}
		}
		iterations, values, err = runGraphZ(ctx, dev, clock, reg, tracer, *algo, *budget, *iters, src, *dosPfx != "", *pdrain, *cache, *sel, *sorted, *comb, semMode, *workers, ck)
	case "graphchi":
		iterations, values, err = runGraphChi(dev, clock, reg, tracer, *algo, *budget, *iters, src)
	case "xstream":
		iterations, values, err = runXStream(dev, clock, reg, tracer, *algo, *budget, *iters, src)
	default:
		err = fmt.Errorf("unknown engine %q", *engine)
	}
	if err != nil {
		fatal(err)
	}

	rep := energy.Measure(clock, kind)
	st := dev.Stats()
	inputName := *in
	if inputName == "" {
		inputName = fmt.Sprintf("gen:%s(seed=%d)", *genKind, *seed)
	}
	fmt.Printf("%s %s on %s (%s, %d B budget)\n", *engine, *algo, inputName, kind, *budget)
	fmt.Printf("  iterations:   %d\n", iterations)
	fmt.Printf("  modeled time: %v (compute %v, IO %v)\n", clock.Total(), clock.TotalCompute(), clock.TotalIO())
	fmt.Printf("  device:       reads %d ops / %d B, writes %d ops / %d B, seeks %d, page-cache hits %d\n",
		st.ReadOps, st.ReadBytes, st.WriteOps, st.WriteBytes, st.Seeks, st.CacheHits)
	fmt.Printf("  device time:  %v (modeled)\n", clock.TotalIO())
	fmt.Printf("  energy:       %s\n", rep)
	if rows := reg.Iters(); len(rows) > 0 {
		fmt.Println("  per-iteration:")
		for _, line := range strings.Split(strings.TrimRight(obs.FormatIterTable(rows), "\n"), "\n") {
			fmt.Println("    " + line)
		}
	}
	// The report is written before the trace teardown: a broken trace
	// sink must not lose the report (the collecting tracer keeps its
	// spans in memory regardless).
	if *repTo != "" {
		report := obs.BuildReport(obs.ReportInfo{
			Engine:      *engine,
			Algo:        *algo,
			Device:      kind.String(),
			BudgetBytes: *budget,
			Config: map[string]string{
				"input":        inputName,
				"workers":      fmt.Sprint(*workers),
				"selective":    fmt.Sprint(*sel),
				"sorted_spill": fmt.Sprint(*sorted || *comb),
				"combine":      fmt.Sprint(*comb),
				"sem":          semMode.String(),
			},
		}, reg, tracer, core.DeviceFileIO(dev))
		if err := report.WriteFile(*repTo); err != nil {
			fatal(err)
		}
		fmt.Printf("  report:       %s (inspect with graphz-report show %s)\n", *repTo, *repTo)
	}
	traceBroken := false
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			// Surface the damage but finish the summary: the run itself
			// succeeded, only the trace output is incomplete.
			fmt.Fprintf(os.Stderr, "graphz-run: trace output failed: %v\n", err)
			traceBroken = true
		} else if *traceTo != "" {
			fmt.Printf("  trace:        %d spans -> %s\n", tracer.Spans(), *traceTo)
		}
		if n := tracer.Dropped(); n > 0 && !traceBroken {
			fmt.Fprintf(os.Stderr, "graphz-run: trace output incomplete: %d spans dropped\n", n)
			traceBroken = true
		}
	}
	printTop(values, *top)
	if traceBroken {
		runExitHooks()
		os.Exit(1)
	}
}

// importDOS copies graphz-convert's exported files onto the device under
// the prefix "g" so the run can skip conversion.
func importDOS(dev *storage.Device, prefix string) error {
	for hostSuffix, devName := range map[string]string{
		".edges": "g.edges", ".meta": "g.meta",
		".new2old": "g.new2old", ".old2new": "g.old2new",
	} {
		data, err := os.ReadFile(prefix + hostSuffix)
		if err != nil {
			return err
		}
		if err := storage.WriteAll(dev, devName, data); err != nil {
			return err
		}
	}
	return nil
}

// runGraphZ preprocesses to DOS (or loads a pre-converted graph) and runs
// the algorithm, returning values keyed by original IDs.
func runGraphZ(ctx context.Context, dev *storage.Device, clock *sim.Clock, reg *obs.Registry, tracer *obs.Tracer, algo string, budget int64, iters int, src graph.VertexID, preconverted, pdrain, cacheAdj, selective, sortedSpill, combine bool, sem core.SemMode, workers int, ck core.CheckpointOptions) (int, map[graph.VertexID]float64, error) {
	var g *dos.Graph
	var err error
	if preconverted {
		g, err = dos.Load(dev, "g")
	} else {
		g, err = dos.Convert(dos.ConvertConfig{Dev: dev, Clock: clock, MemoryBudget: budget / 4}, "raw", "g")
	}
	if err != nil {
		return 0, nil, err
	}
	o2n, err := g.OldToNew()
	if err != nil {
		return 0, nil, err
	}
	n2o, err := g.NewToOld()
	if err != nil {
		return 0, nil, err
	}
	opts := core.Options{
		Context: ctx, MemoryBudget: budget, Clock: clock, DynamicMessages: true, MaxIterations: 200,
		ParallelDrain: pdrain, CacheAdjacency: cacheAdj, WorkerParallelism: workers,
		SelectiveScheduling: selective, SortedSpill: sortedSpill, Combine: combine,
		SemiExternal: sem, Obs: reg, Trace: tracer, Checkpoint: ck,
	}
	if ck.Dir != "" {
		// Bind checkpoints to the algorithm: resuming a "pr" checkpoint
		// under -algo bfs fails the manifest's name check instead of
		// silently mixing states.
		opts.Name = "graphz-" + algo
	}
	var res core.Result
	var vals []float64
	collect32 := func(v []float32) {
		vals = make([]float64, len(v))
		for i, x := range v {
			vals[i] = float64(x)
		}
	}
	collectU := func(v []uint32) {
		vals = make([]float64, len(v))
		for i, x := range v {
			vals[i] = float64(x)
		}
	}
	switch algo {
	case "pr":
		r, v, err := graphzalgo.PageRank(g, opts, iters, 0.85)
		if err != nil {
			return 0, nil, err
		}
		res = r
		collect32(v)
	case "bfs":
		r, v, err := graphzalgo.BFS(g, opts, o2n[src])
		if err != nil {
			return 0, nil, err
		}
		res = r
		collectU(v)
	case "cc":
		r, v, err := graphzalgo.ConnectedComponents(g, opts)
		if err != nil {
			return 0, nil, err
		}
		res = r
		collectU(v)
	case "sssp":
		r, v, err := graphzalgo.SSSP(g, opts, o2n[src])
		if err != nil {
			return 0, nil, err
		}
		res = r
		collect32(v)
	case "bp":
		r, v, err := graphzalgo.BeliefPropagation(g, opts, iters)
		if err != nil {
			return 0, nil, err
		}
		res = r
		collect32(v)
	case "rw":
		r, v, err := graphzalgo.RandomWalk(g, opts, iters, 1)
		if err != nil {
			return 0, nil, err
		}
		res = r
		collectU(v)
	default:
		return 0, nil, fmt.Errorf("unknown algorithm %q", algo)
	}
	if res.SemiExternal {
		fmt.Printf("sem: semi-external mode (%s) — vertex states resident, %d messages applied inline, zero spill\n",
			sem, res.MessagesInline)
	} else if sem == core.SemAuto {
		fmt.Printf("sem: partitioned mode — resident vertex states would exceed the %d B budget\n", budget)
	}
	if ck.Dir != "" {
		fmt.Printf("checkpoint: %d written (%d B, %v) -> %s\n",
			res.Checkpoints, res.CheckpointBytes, res.CheckpointTime, ck.Dir)
	}
	if selective {
		fmt.Printf("selective: %d blocks scanned, %d skipped\n",
			res.BlocksScanned, res.BlocksSkipped)
	}
	if sortedSpill || combine {
		fmt.Printf("sort-reduce: %d messages combined, %d drain merge passes, %d B spill writes saved\n",
			res.MessagesCombined, res.DrainMergePasses, res.SpillBytesSaved)
	}
	out := make(map[graph.VertexID]float64, len(vals))
	for newID, val := range vals {
		out[n2o[newID]] = val
	}
	return res.Iterations, out, nil
}

// runGraphChi shards and runs the algorithm.
func runGraphChi(dev *storage.Device, clock *sim.Clock, reg *obs.Registry, tracer *obs.Tracer, algo string, budget int64, iters int, src graph.VertexID) (int, map[graph.VertexID]float64, error) {
	evalSize := 4
	if algo == "bp" {
		evalSize = 8
	}
	sh, err := graphchi.Shard(graphchi.ShardConfig{Dev: dev, Clock: clock, MemoryBudget: budget, EdgeValSize: evalSize}, "raw", "g")
	if err != nil {
		return 0, nil, err
	}
	opts := graphchi.Options{MemoryBudget: budget, Clock: clock, MaxIterations: 200, Obs: reg, Trace: tracer}
	var res graphchi.Result
	var vals []float64
	switch algo {
	case "pr":
		r, v, err := chialgo.PageRank(sh, opts, iters, 0.85)
		if err != nil {
			return 0, nil, err
		}
		res, vals = r, widen32(v)
	case "bfs":
		r, v, err := chialgo.BFS(sh, opts, src)
		if err != nil {
			return 0, nil, err
		}
		res, vals = r, widenU(v)
	case "cc":
		r, v, err := chialgo.ConnectedComponents(sh, opts)
		if err != nil {
			return 0, nil, err
		}
		res, vals = r, widenU(v)
	case "sssp":
		r, v, err := chialgo.SSSP(sh, opts, src)
		if err != nil {
			return 0, nil, err
		}
		res, vals = r, widen32(v)
	case "bp":
		r, v, err := chialgo.BeliefPropagation(sh, opts, iters)
		if err != nil {
			return 0, nil, err
		}
		res, vals = r, widen32(v)
	case "rw":
		r, v, err := chialgo.RandomWalk(sh, opts, iters, 1)
		if err != nil {
			return 0, nil, err
		}
		res, vals = r, widenU(v)
	default:
		return 0, nil, fmt.Errorf("unknown algorithm %q", algo)
	}
	return res.Iterations, identityMap(vals), nil
}

// runXStream partitions and runs the algorithm.
func runXStream(dev *storage.Device, clock *sim.Clock, reg *obs.Registry, tracer *obs.Tracer, algo string, budget int64, iters int, src graph.VertexID) (int, map[graph.VertexID]float64, error) {
	pt, err := xstream.Partition(xstream.PartitionConfig{Dev: dev, Clock: clock, MemoryBudget: budget}, "raw", "g")
	if err != nil {
		return 0, nil, err
	}
	opts := xstream.Options{MemoryBudget: budget, Clock: clock, MaxIterations: 200, Obs: reg, Trace: tracer}
	var res xstream.Result
	var vals []float64
	switch algo {
	case "pr":
		r, v, err := xsalgo.PageRank(pt, opts, iters, 0.85)
		if err != nil {
			return 0, nil, err
		}
		res, vals = r, widen32(v)
	case "bfs":
		r, v, err := xsalgo.BFS(pt, opts, src)
		if err != nil {
			return 0, nil, err
		}
		res, vals = r, widenU(v)
	case "cc":
		r, v, err := xsalgo.ConnectedComponents(pt, opts)
		if err != nil {
			return 0, nil, err
		}
		res, vals = r, widenU(v)
	case "sssp":
		r, v, err := xsalgo.SSSP(pt, opts, src)
		if err != nil {
			return 0, nil, err
		}
		res, vals = r, widen32(v)
	case "bp":
		r, v, err := xsalgo.BeliefPropagation(pt, opts, iters)
		if err != nil {
			return 0, nil, err
		}
		res, vals = r, widen32(v)
	case "rw":
		r, v, err := xsalgo.RandomWalk(pt, opts, iters, 1)
		if err != nil {
			return 0, nil, err
		}
		res, vals = r, widenU(v)
	default:
		return 0, nil, fmt.Errorf("unknown algorithm %q", algo)
	}
	return res.Iterations, identityMap(vals), nil
}

func widen32(v []float32) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(x)
	}
	return out
}

func widenU(v []uint32) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(x)
	}
	return out
}

func identityMap(vals []float64) map[graph.VertexID]float64 {
	out := make(map[graph.VertexID]float64, len(vals))
	for i, v := range vals {
		out[graph.VertexID(i)] = v
	}
	return out
}

func maxDegree(edges []graph.Edge) graph.VertexID {
	deg := map[graph.VertexID]int{}
	for _, e := range edges {
		deg[e.Src]++
	}
	var best graph.VertexID
	bestDeg := -1
	for v, d := range deg {
		if d > bestDeg || (d == bestDeg && v < best) {
			best, bestDeg = v, d
		}
	}
	return best
}

func printTop(values map[graph.VertexID]float64, n int) {
	type kv struct {
		id  graph.VertexID
		val float64
	}
	list := make([]kv, 0, len(values))
	for id, v := range values {
		list = append(list, kv{id, v})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].val != list[j].val {
			return list[i].val > list[j].val
		}
		return list[i].id < list[j].id
	})
	if n > len(list) {
		n = len(list)
	}
	fmt.Printf("  top %d vertices by value:\n", n)
	for _, e := range list[:n] {
		fmt.Printf("    vertex %-10d %g\n", e.id, e.val)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphz-run:", err)
	runExitHooks()
	os.Exit(1)
}
