package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"graphz/internal/obs"
)

// sampleReport exercises every show section: identity, stages with a
// dominant-stage partition breakdown, messages/selective/codec/checkpoint
// summaries, the memory timeline, hot blocks, and per-file IO.
func sampleReport() *obs.RunReport {
	return &obs.RunReport{
		Schema:      obs.ReportSchemaVersion,
		Engine:      "graphz",
		Algo:        "pagerank",
		Device:      "null",
		BudgetBytes: 64 << 20,
		Config:      map[string]string{"workers": "4", "input": "rmat16"},
		Counters: map[string]int64{
			"graphz_messages_inline_total":     900,
			"graphz_messages_buffered_total":   100,
			"graphz_messages_spilled_total":    25,
			"graphz_blocks_scanned_total":      60,
			"graphz_blocks_skipped_total":      40,
			"graphz_codec_bytes_raw_total":     4096,
			"graphz_codec_bytes_encoded_total": 1024,
			"graphz_codec_decode_ns_total":     500_000,
			"graphz_checkpoint_total":          2,
			"graphz_checkpoint_bytes_total":    2048,
			"graphz_checkpoint_ns_total":       750_000,
		},
		Memory: []obs.MemSample{
			{Iteration: 0, BudgetBytes: 64 << 20, IndexBytes: 1 << 20, VertexStateBytes: 2 << 20},
			{Iteration: 1, BudgetBytes: 64 << 20, IndexBytes: 1 << 20, VertexStateBytes: 2 << 20, SpillBytes: 4096},
		},
		Stages: []obs.StageAgg{
			{Engine: "graphz", Stage: obs.StageSio, Iter: 0, Part: 0, Spans: 1, NS: 3_000_000},
			{Engine: "graphz", Stage: obs.StageSio, Iter: 0, Part: 1, Spans: 1, NS: 5_000_000},
			{Engine: "graphz", Stage: obs.StageWorker, Iter: 0, Part: 0, Spans: 1, NS: 2_000_000},
		},
		Blocks: []obs.BlockHeat{
			{File: "graphz.edges", Block: 0, Reads: 4, ReadBytes: 4096},
			{File: "graphz.edges", Block: 1, Reads: 9, ReadBytes: 9216, DecodeNS: 1234},
			{File: "graphz.vstate", Block: 0, DrainMsgs: 77},
		},
		Files: map[string]obs.FileIO{
			"graphz.edges": {ReadOps: 13, ReadBytes: 13312, Seeks: 2},
		},
	}
}

func TestShowRendersAllSections(t *testing.T) {
	var buf bytes.Buffer
	show(&buf, sampleReport(), 10)
	out := buf.String()
	for _, w := range []string{
		"engine=graphz algo=pagerank device=null budget=64.00 MiB",
		"input=rmat16",
		"workers=4",
		"stages (10ms total):",
		"sio", "80.0%", // 8ms of 10ms
		"busiest sio partitions: p1=5ms p0=3ms",
		"messages: 900 inline, 100 buffered, 25 spilled",
		"selective: 60 blocks scanned, 40 skipped (40.0%)",
		"codec: 4.0 KiB raw from 1.0 KiB encoded (4.00x), decode 500µs",
		"checkpoints: 2 written, 2.0 KiB, 750µs",
		"memory (budget 64.00 MiB):",
		"hot blocks by read_bytes:",
		"hot blocks by drain_msgs:",
		"hot blocks by decode_ns:",
		"file IO:",
		"reads 13 ops / 13.0 KiB",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("show output missing %q\n%s", w, out)
		}
	}
	// Hottest read_bytes block listed first.
	if i, j := strings.Index(out, "block 1"), strings.Index(out, "block 0"); i < 0 || j < 0 || i > j {
		t.Errorf("hot blocks not sorted by read_bytes:\n%s", out)
	}
}

func TestShowTopLimitsBlocks(t *testing.T) {
	var buf bytes.Buffer
	show(&buf, sampleReport(), 1)
	out := buf.String()
	sec := out[strings.Index(out, "hot blocks by read_bytes"):]
	sec = sec[:strings.Index(sec, "hot blocks by drain_msgs")]
	if strings.Count(sec, "graphz.edges") != 1 {
		t.Errorf("-top 1 should keep one read_bytes block:\n%s", sec)
	}
}

func TestShowEmptyReport(t *testing.T) {
	var buf bytes.Buffer
	show(&buf, &obs.RunReport{Schema: 1}, 10)
	if out := buf.String(); !strings.HasPrefix(out, "run: engine=- algo=- device=-") ||
		strings.Contains(out, "stages") {
		t.Errorf("empty report rendered sections:\n%s", out)
	}
}

func TestRenderDiff(t *testing.T) {
	d := &obs.ReportDiff{
		Stages: []obs.StageDelta{
			{Stage: obs.StageDrain, BaseNS: 1_000_000, CurNS: 5_000_000, Regressed: true},
			{Stage: obs.StageSio, BaseNS: 2_000_000, CurNS: 2_100_000},
		},
		Counters: []obs.CounterDelta{
			{Name: "graphz_messages_spilled_total", Base: 0, Cur: 640, Regressed: true},
		},
		Blocks: []obs.BlockRangeDelta{
			{File: "graphz.vstate", Metric: "drain_msgs", FirstBlock: 0, LastBlock: 3, Base: 10, Cur: 500},
			{File: "graphz.edges", Metric: "reads", FirstBlock: 7, LastBlock: 7, Base: 1, Cur: 40},
		},
		Regressions: 4,
	}
	var buf bytes.Buffer
	renderDiff(&buf, d)
	out := buf.String()
	for _, w := range []string{
		"drain", "+400.0%", "REGRESSION",
		"sio", "+5.0%", "ok",
		"graphz_messages_spilled_total", "640",
		"regressed block ranges:",
		"blocks 0-3", "drain_msgs", "10 -> 500",
		"block 7", "reads",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("diff output missing %q\n%s", w, out)
		}
	}
	if strings.Contains(out, "no regressions") {
		t.Errorf("regressed diff printed the all-clear:\n%s", out)
	}

	buf.Reset()
	renderDiff(&buf, &obs.ReportDiff{})
	if !strings.Contains(buf.String(), "no regressions") {
		t.Errorf("clean diff missing the all-clear: %q", buf.String())
	}
}

func TestFmtHelpers(t *testing.T) {
	if got := fmtBytes(0); got != "0 B" {
		t.Errorf("fmtBytes(0) = %q", got)
	}
	if got := fmtBytes(1536); got != "1.5 KiB" {
		t.Errorf("fmtBytes(1536) = %q", got)
	}
	if got := fmtBytes(3 << 30); got != "3.00 GiB" {
		t.Errorf("fmtBytes(3GiB) = %q", got)
	}
	if got := fmtNS(1_500_000); got != "1.5ms" {
		t.Errorf("fmtNS = %q", got)
	}
	if got := pctDelta(0, 0); got != 0 {
		t.Errorf("pctDelta(0,0) = %v", got)
	}
	if got := pctDelta(0, 5); got != 100 {
		t.Errorf("pctDelta(0,5) = %v", got)
	}
}

// TestCLIRoundTrip builds the binary and drives show + diff end to end,
// checking the exit-code contract: 0 clean, 1 on regressions, 2 on usage.
func TestCLIRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping exec test in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "graphz-report")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	base := sampleReport()
	cur := sampleReport()
	cur.Stages = append([]obs.StageAgg(nil), cur.Stages...)
	cur.Stages[0] = obs.StageAgg{Engine: "graphz", Stage: obs.StageSio, Iter: 0, Part: 0, Spans: 1, NS: 30_000_000}
	basePath := filepath.Join(dir, "base.json")
	curPath := filepath.Join(dir, "cur.json")
	if err := base.WriteFile(basePath); err != nil {
		t.Fatal(err)
	}
	if err := cur.WriteFile(curPath); err != nil {
		t.Fatal(err)
	}

	out, err := exec.Command(bin, "show", basePath).CombinedOutput()
	if err != nil {
		t.Fatalf("show: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "engine=graphz") {
		t.Errorf("show output:\n%s", out)
	}

	// Identical reports: exit 0, no regressions.
	if out, err := exec.Command(bin, "diff", basePath, basePath).CombinedOutput(); err != nil {
		t.Fatalf("self-diff: %v\n%s", err, out)
	} else if !strings.Contains(string(out), "no regressions") {
		t.Errorf("self-diff output:\n%s", out)
	}

	// Regressed sio stage: exit 1 and a REGRESSION row.
	out, err = exec.Command(bin, "diff", basePath, curPath).CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("regressed diff err = %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "REGRESSION") || !strings.Contains(string(out), "sio") {
		t.Errorf("regressed diff output:\n%s", out)
	}

	// A high threshold suppresses the regression.
	if out, err := exec.Command(bin, "diff", "-threshold", "20", basePath, curPath).CombinedOutput(); err != nil {
		t.Fatalf("thresholded diff: %v\n%s", err, out)
	}

	// Usage errors exit 2.
	for _, args := range [][]string{{}, {"bogus"}, {"show"}, {"diff", basePath}} {
		cmd := exec.Command(bin, args...)
		if ee, ok := cmd.Run().(*exec.ExitError); !ok || ee.ExitCode() != 2 {
			t.Errorf("args %v: want exit 2, got %v", args, cmd.ProcessState)
		}
	}

	// Corrupt input exits 1 with a parse error.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "show", bad)
	if ee, ok := cmd.Run().(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Errorf("corrupt report: want exit 1, got %v", cmd.ProcessState)
	}
}
