// Command graphz-report analyzes the run-report artifacts graphz-run
// -report and the bench harness emit (docs/OBSERVABILITY.md, "Run
// reports"): `show` renders one report — stage breakdown, memory-budget
// timeline, block-level IO hot spots — and `diff` compares two reports
// of the same configuration, localizing regressions to stages, counters,
// and block ranges. diff exits non-zero when anything regressed, so it
// can gate CI like graphz-benchdiff does for ns/op.
//
// Usage:
//
//	graphz-report show run.json [-top 10]
//	graphz-report diff base.json cur.json [-threshold 0.25] [-top 16] [-min-ns 250000] [-min-count 16]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"graphz/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "show":
		fs := flag.NewFlagSet("show", flag.ExitOnError)
		top := fs.Int("top", 10, "hot blocks and partitions to list")
		fs.Parse(os.Args[2:])
		if fs.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "graphz-report show: need exactly one report file")
			os.Exit(2)
		}
		rep, err := obs.ReadReportFile(fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		show(os.Stdout, rep, *top)
	case "diff":
		fs := flag.NewFlagSet("diff", flag.ExitOnError)
		threshold := fs.Float64("threshold", 0, "relative growth flagged as a regression (default 0.25)")
		minNS := fs.Int64("min-ns", 0, "absolute ns floor a duration increase must clear (default 250000; negative disables)")
		minCount := fs.Int64("min-count", 0, "absolute floor a count increase must clear (default 16; negative disables)")
		top := fs.Int("top", 0, "block-range regressions to report (default 16)")
		fs.Parse(os.Args[2:])
		if fs.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "graphz-report diff: need a base and a current report file")
			os.Exit(2)
		}
		base, err := obs.ReadReportFile(fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		cur, err := obs.ReadReportFile(fs.Arg(1))
		if err != nil {
			fatal(err)
		}
		d := obs.DiffReports(base, cur, obs.DiffOptions{
			Threshold: *threshold, MinNS: *minNS, MinCount: *minCount, TopBlocks: *top,
		})
		renderDiff(os.Stdout, d)
		if d.Regressions > 0 {
			fmt.Fprintf(os.Stderr, "graphz-report: %d regression(s)\n", d.Regressions)
			os.Exit(1)
		}
	case "-h", "-help", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "graphz-report: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  graphz-report show <report.json> [-top N]
  graphz-report diff <base.json> <cur.json> [-threshold F] [-top N] [-min-ns N] [-min-count N]`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphz-report:", err)
	os.Exit(1)
}

// show renders one report: identity, stage breakdown, message/cache/
// checkpoint summaries, the memory timeline, and the hottest blocks.
func show(w io.Writer, rep *obs.RunReport, top int) {
	fmt.Fprintf(w, "run: engine=%s algo=%s device=%s budget=%s\n",
		orDash(rep.Engine), orDash(rep.Algo), orDash(rep.Device), fmtBytes(rep.BudgetBytes))
	for _, k := range sortedKeys(rep.Config) {
		fmt.Fprintf(w, "  %s=%s\n", k, rep.Config[k])
	}

	showStages(w, rep)
	showEfficiency(w, rep)
	showMemory(w, rep)
	showBlocks(w, rep, top)
	showFiles(w, rep)
}

// showStages prints the span-aggregated stage wall times, largest first,
// with the busiest partitions of the dominant stage.
func showStages(w io.Writer, rep *obs.RunReport) {
	tot := rep.StageTotals()
	if len(tot) == 0 {
		return
	}
	type st struct {
		name string
		ns   int64
	}
	var stages []st
	var sum int64
	for name, ns := range tot {
		stages = append(stages, st{name, ns})
		sum += ns
	}
	sort.Slice(stages, func(i, j int) bool {
		if stages[i].ns != stages[j].ns {
			return stages[i].ns > stages[j].ns
		}
		return stages[i].name < stages[j].name
	})
	fmt.Fprintf(w, "\nstages (%s total):\n", fmtNS(sum))
	for _, s := range stages {
		pct := 0.0
		if sum > 0 {
			pct = 100 * float64(s.ns) / float64(sum)
		}
		fmt.Fprintf(w, "  %-10s  %12s  %5.1f%%\n", s.name, fmtNS(s.ns), pct)
	}
	if len(stages) > 0 {
		dom := stages[0].name
		parts := rep.PartitionTotals(dom)
		if len(parts) > 1 {
			type pt struct {
				part int
				ns   int64
			}
			var list []pt
			for p, ns := range parts {
				list = append(list, pt{p, ns})
			}
			sort.Slice(list, func(i, j int) bool { return list[i].ns > list[j].ns })
			if len(list) > 3 {
				list = list[:3]
			}
			fmt.Fprintf(w, "  busiest %s partitions:", dom)
			for _, p := range list {
				fmt.Fprintf(w, " p%d=%s", p.part, fmtNS(p.ns))
			}
			fmt.Fprintln(w)
		}
	}
}

// showEfficiency summarizes message routing, selective scheduling, the
// adjacency codec, and checkpoint overhead from the final counters.
func showEfficiency(w io.Writer, rep *obs.RunReport) {
	c := rep.Counters
	if len(c) == 0 {
		return
	}
	if inline, buffered := c["graphz_messages_inline_total"], c["graphz_messages_buffered_total"]; inline+buffered > 0 {
		fmt.Fprintf(w, "\nmessages: %d inline, %d buffered, %d spilled\n",
			inline, buffered, c["graphz_messages_spilled_total"])
	}
	if scanned, skipped := c["graphz_blocks_scanned_total"], c["graphz_blocks_skipped_total"]; scanned+skipped > 0 {
		fmt.Fprintf(w, "selective: %d blocks scanned, %d skipped (%.1f%%)\n",
			scanned, skipped, 100*float64(skipped)/float64(scanned+skipped))
	}
	if raw := c["graphz_codec_bytes_raw_total"]; raw > 0 {
		enc := c["graphz_codec_bytes_encoded_total"]
		fmt.Fprintf(w, "codec: %s raw from %s encoded (%.2fx), decode %s\n",
			fmtBytes(raw), fmtBytes(enc), float64(raw)/float64(enc),
			fmtNS(c["graphz_codec_decode_ns_total"]))
	}
	if n := c["graphz_checkpoint_total"]; n > 0 {
		fmt.Fprintf(w, "checkpoints: %d written, %s, %s\n",
			n, fmtBytes(c["graphz_checkpoint_bytes_total"]), fmtNS(c["graphz_checkpoint_ns_total"]))
	}
	if n := c["graphz_adjcache_hits_total"]; n > 0 {
		fmt.Fprintf(w, "adjacency cache: %d partition hits\n", n)
	}
}

// showMemory prints the budget-accounting timeline, one row per sampled
// iteration.
func showMemory(w io.Writer, rep *obs.RunReport) {
	if len(rep.Memory) == 0 {
		return
	}
	fmt.Fprintf(w, "\nmemory (budget %s):\n", fmtBytes(rep.Memory[0].BudgetBytes))
	fmt.Fprintf(w, "  %4s  %10s  %10s  %10s  %10s  %10s\n",
		"iter", "resident", "vstate", "adjcache", "msgbuf", "spill")
	for _, m := range rep.Memory {
		fmt.Fprintf(w, "  %4d  %10s  %10s  %10s  %10s  %10s\n",
			m.Iteration, fmtBytes(m.ResidentBytes()), fmtBytes(m.VertexStateBytes),
			fmtBytes(m.AdjCacheBytes), fmtBytes(m.MsgBufferBytes), fmtBytes(m.SpillBytes))
	}
}

// showBlocks prints the top blocks by read traffic and, when present, by
// drain fan-in and decode time.
func showBlocks(w io.Writer, rep *obs.RunReport, top int) {
	if len(rep.Blocks) == 0 {
		return
	}
	hottest := func(metric string, get func(obs.BlockHeat) int64) {
		cells := make([]obs.BlockHeat, 0, len(rep.Blocks))
		for _, c := range rep.Blocks {
			if get(c) > 0 {
				cells = append(cells, c)
			}
		}
		if len(cells) == 0 {
			return
		}
		sort.Slice(cells, func(i, j int) bool {
			if d := get(cells[i]) - get(cells[j]); d != 0 {
				return d > 0
			}
			if cells[i].File != cells[j].File {
				return cells[i].File < cells[j].File
			}
			return cells[i].Block < cells[j].Block
		})
		if len(cells) > top {
			cells = cells[:top]
		}
		fmt.Fprintf(w, "\nhot blocks by %s:\n", metric)
		for _, c := range cells {
			fmt.Fprintf(w, "  %-20s block %-6d reads=%d read_bytes=%d skips=%d decode_ns=%d drain_msgs=%d\n",
				c.File, c.Block, c.Reads, c.ReadBytes, c.Skips, c.DecodeNS, c.DrainMsgs)
		}
	}
	hottest("read_bytes", func(c obs.BlockHeat) int64 { return c.ReadBytes })
	hottest("drain_msgs", func(c obs.BlockHeat) int64 { return c.DrainMsgs })
	hottest("decode_ns", func(c obs.BlockHeat) int64 { return c.DecodeNS })
}

// showFiles prints the per-file physical device traffic.
func showFiles(w io.Writer, rep *obs.RunReport) {
	if len(rep.Files) == 0 {
		return
	}
	names := make([]string, 0, len(rep.Files))
	for n := range rep.Files {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintln(w, "\nfile IO:")
	for _, n := range names {
		f := rep.Files[n]
		fmt.Fprintf(w, "  %-20s reads %d ops / %s, writes %d ops / %s, seeks %d, cache hits %d\n",
			n, f.ReadOps, fmtBytes(f.ReadBytes), f.WriteOps, fmtBytes(f.WriteBytes),
			f.Seeks, f.CacheHits)
	}
}

// renderDiff prints the stage, counter, and block-range comparison.
func renderDiff(w io.Writer, d *obs.ReportDiff) {
	if len(d.Stages) > 0 {
		fmt.Fprintf(w, "%-12s  %12s  %12s  %8s  %s\n", "stage", "base", "current", "delta", "verdict")
		for _, s := range d.Stages {
			fmt.Fprintf(w, "%-12s  %12s  %12s  %+7.1f%%  %s\n",
				s.Stage, fmtNS(s.BaseNS), fmtNS(s.CurNS), pctDelta(s.BaseNS, s.CurNS), verdict(s.Regressed))
		}
	}
	if len(d.Counters) > 0 {
		fmt.Fprintln(w)
		nameW := len("counter")
		for _, c := range d.Counters {
			if len(c.Name) > nameW {
				nameW = len(c.Name)
			}
		}
		fmt.Fprintf(w, "%-*s  %12s  %12s  %8s  %s\n", nameW, "counter", "base", "current", "delta", "verdict")
		for _, c := range d.Counters {
			fmt.Fprintf(w, "%-*s  %12d  %12d  %+7.1f%%  %s\n",
				nameW, c.Name, c.Base, c.Cur, pctDelta(c.Base, c.Cur), verdict(c.Regressed))
		}
	}
	if len(d.Blocks) > 0 {
		fmt.Fprintln(w, "\nregressed block ranges:")
		for _, b := range d.Blocks {
			span := fmt.Sprintf("block %d", b.FirstBlock)
			if b.LastBlock != b.FirstBlock {
				span = fmt.Sprintf("blocks %d-%d", b.FirstBlock, b.LastBlock)
			}
			fmt.Fprintf(w, "  %-20s %-16s %-12s %d -> %d\n", b.File, span, b.Metric, b.Base, b.Cur)
		}
	}
	if d.Regressions == 0 {
		fmt.Fprintln(w, "no regressions")
	}
}

func verdict(regressed bool) string {
	if regressed {
		return "REGRESSION"
	}
	return "ok"
}

func pctDelta(base, cur int64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return 100
	}
	return 100 * float64(cur-base) / float64(base)
}

func fmtNS(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
