package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: graphz/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkEngine-8          	     100	   3879178 ns/op	 5849000 B/op	     293 allocs/op
BenchmarkEngineObserved-8  	      90	   4650869 ns/op	 6346272 B/op	     458 allocs/op
BenchmarkEngineSelective/selective=false-8         	     100	   3625733 ns/op	 9148888 B/op	     423 allocs/op
BenchmarkEngineSelective/selective=true-8          	     120	   3307598 ns/op	 7250336 B/op	     391 allocs/op
PASS
ok  	graphz/internal/core	5.173s
`

func TestParseBenchOutput(t *testing.T) {
	snap, err := parseBenchOutput(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(snap.Benchmarks), snap)
	}
	first := snap.Benchmarks[0]
	if first.Name != "BenchmarkEngine" {
		t.Errorf("name = %q; GOMAXPROCS suffix should be stripped", first.Name)
	}
	if first.NsPerOp != 3879178 || first.BytesPerOp != 5849000 || first.AllocsPerOp != 293 {
		t.Errorf("values = %+v", first)
	}
	// Sub-benchmark names keep their path and their =true suffix.
	if got := snap.Benchmarks[3].Name; got != "BenchmarkEngineSelective/selective=true" {
		t.Errorf("sub-benchmark name = %q", got)
	}
}

func TestParseBenchOutputAveragesRepeats(t *testing.T) {
	in := `BenchmarkX-8   10   100 ns/op
BenchmarkX-8   10   300 ns/op
`
	snap, err := parseBenchOutput(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 1 || snap.Benchmarks[0].NsPerOp != 200 {
		t.Fatalf("repeat averaging: %+v", snap.Benchmarks)
	}
}

func TestParseBenchOutputNoMemStats(t *testing.T) {
	snap, err := parseBenchOutput(strings.NewReader("BenchmarkY   5   250 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 1 || snap.Benchmarks[0].NsPerOp != 250 {
		t.Fatalf("plain ns/op line: %+v", snap.Benchmarks)
	}
	if snap.Benchmarks[0].Name != "BenchmarkY" {
		t.Errorf("name without suffix = %q", snap.Benchmarks[0].Name)
	}
}

func bench(name string, ns float64) Benchmark { return Benchmark{Name: name, NsPerOp: ns} }

func TestCompareVerdicts(t *testing.T) {
	base := Snapshot{Benchmarks: []Benchmark{
		bench("A", 1000), // within threshold
		bench("B", 1000), // regression
		bench("C", 1000), // improvement
		bench("D", 1000), // missing from current
	}}
	cur := Snapshot{Benchmarks: []Benchmark{
		bench("A", 1100),
		bench("B", 1200),
		bench("C", 500),
		bench("E", 42), // new, no baseline
	}}
	var out strings.Builder
	regressions := compare(&out, base, cur, 0.15)
	if regressions != 2 {
		t.Fatalf("regressions = %d, want 2 (B regressed, D missing):\n%s", regressions, out.String())
	}
	report := out.String()
	for _, want := range []string{"REGRESSION", "MISSING", "improved", "new (no baseline)"} {
		if !strings.Contains(report, want) {
			t.Errorf("report lacks %q:\n%s", want, report)
		}
	}
	if !strings.Contains(report, "+10.0%") {
		t.Errorf("report lacks A's +10.0%% delta:\n%s", report)
	}
}

func TestCompareExactThresholdPasses(t *testing.T) {
	base := Snapshot{Benchmarks: []Benchmark{bench("A", 1000)}}
	cur := Snapshot{Benchmarks: []Benchmark{bench("A", 1150)}}
	var out strings.Builder
	if got := compare(&out, base, cur, 0.15); got != 0 {
		t.Fatalf("exactly at threshold should pass, got %d regressions:\n%s", got, out.String())
	}
}

func TestSanitizeDropsMalformedEntries(t *testing.T) {
	s := Snapshot{Benchmarks: []Benchmark{
		bench("A", 1000),
		bench("", 500),  // empty name
		bench("B", 0),   // missing ns/op
		bench("C", -10), // negative ns/op
		bench("D", 2000),
	}}
	if dropped := s.sanitize(); dropped != 3 {
		t.Fatalf("sanitize dropped %d entries, want 3: %+v", dropped, s.Benchmarks)
	}
	if len(s.Benchmarks) != 2 || s.Benchmarks[0].Name != "A" || s.Benchmarks[1].Name != "D" {
		t.Fatalf("sanitize kept %+v, want A and D in order", s.Benchmarks)
	}
	if s.sanitize() != 0 {
		t.Error("sanitize of a clean snapshot dropped entries")
	}
}

func TestReadSnapshotRejectsMalformedEntries(t *testing.T) {
	dir := t.TempDir()
	writeSnap := func(name, body string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	good := writeSnap("good.json", `{"benchmarks":[{"name":"BenchmarkEngine","ns_per_op":100}]}`)
	if _, err := readSnapshot(good); err != nil {
		t.Fatalf("well-formed snapshot rejected: %v", err)
	}
	for name, body := range map[string]string{
		"empty-name.json": `{"benchmarks":[{"name":"","ns_per_op":100}]}`,
		"no-name.json":    `{"benchmarks":[{"ns_per_op":100}]}`,
		"zero-ns.json":    `{"benchmarks":[{"name":"BenchmarkEngine"}]}`,
	} {
		if _, err := readSnapshot(writeSnap(name, body)); err == nil {
			t.Errorf("%s: malformed snapshot accepted", name)
		}
	}
}

func TestCompareIdenticalSnapshots(t *testing.T) {
	s := Snapshot{Benchmarks: []Benchmark{bench("A", 1000), bench("B", 2000)}}
	var out strings.Builder
	if got := compare(&out, s, s, 0.15); got != 0 {
		t.Fatalf("identical snapshots regressed: %d\n%s", got, out.String())
	}
}
