// Command graphz-benchdiff is the benchmark-regression gate: it records
// `go test -bench` text output as a JSON snapshot and compares two
// snapshots, exiting non-zero when any benchmark's ns/op regressed past
// a threshold (or disappeared). CI runs it against the committed
// baseline in ci/bench-baseline.json (see `make bench-json` and the
// "bench" job in .github/workflows/ci.yml).
//
// Usage:
//
//	go test -bench BenchmarkEngine ./internal/core/ | graphz-benchdiff -record -out BENCH_core.json
//	graphz-benchdiff -baseline ci/bench-baseline.json -current BENCH_core.json -threshold 0.15
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one recorded benchmark result.
type Benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Snapshot is the JSON file format.
type Snapshot struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		record    = flag.Bool("record", false, "parse `go test -bench` text from stdin and write a JSON snapshot")
		out       = flag.String("out", "", "output file for -record (default stdout)")
		baseline  = flag.String("baseline", "", "baseline snapshot to compare against")
		current   = flag.String("current", "", "current snapshot to compare")
		threshold = flag.Float64("threshold", 0.15, "allowed fractional ns/op regression before failing")
	)
	flag.Parse()

	switch {
	case *record:
		snap, err := parseBenchOutput(os.Stdin)
		if err != nil {
			fatalf("record: %v", err)
		}
		if dropped := snap.sanitize(); dropped > 0 {
			fmt.Fprintf(os.Stderr, "graphz-benchdiff: record: dropped %d entries with an empty name or no positive ns/op\n", dropped)
		}
		if len(snap.Benchmarks) == 0 {
			fatalf("record: no benchmark lines found on stdin")
		}
		w := io.Writer(os.Stdout)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatalf("record: %v", err)
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			fatalf("record: %v", err)
		}
	case *baseline != "" && *current != "":
		base, err := readSnapshot(*baseline)
		if err != nil {
			fatalf("compare: %v", err)
		}
		cur, err := readSnapshot(*current)
		if err != nil {
			fatalf("compare: %v", err)
		}
		regressions := compare(os.Stdout, base, cur, *threshold)
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "graphz-benchdiff: %d benchmark(s) regressed beyond %.0f%%\n",
				regressions, *threshold*100)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "graphz-benchdiff: need either -record or both -baseline and -current")
		flag.Usage()
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graphz-benchdiff: "+format+"\n", args...)
	os.Exit(2)
}

func readSnapshot(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	// A snapshot used as a gate must be well-formed: an empty-name entry
	// (a hand-edit or merge artifact) would silently "match" any other
	// empty-name entry in compare and gate nothing, so reject instead of
	// repairing here.
	for i, b := range s.Benchmarks {
		if b.Name == "" {
			return Snapshot{}, fmt.Errorf("%s: benchmark entry %d has an empty name", path, i)
		}
		if !(b.NsPerOp > 0) {
			return Snapshot{}, fmt.Errorf("%s: benchmark %q has no positive ns/op (%v)", path, b.Name, b.NsPerOp)
		}
	}
	return s, nil
}

// sanitize drops malformed entries — empty names or missing ns/op — so
// -record never writes a snapshot that readSnapshot would then reject.
// It returns how many entries were dropped.
func (s *Snapshot) sanitize() int {
	kept := s.Benchmarks[:0]
	for _, b := range s.Benchmarks {
		if b.Name == "" || !(b.NsPerOp > 0) {
			continue
		}
		kept = append(kept, b)
	}
	dropped := len(s.Benchmarks) - len(kept)
	s.Benchmarks = kept
	return dropped
}

// parseBenchOutput extracts benchmark results from `go test -bench`
// text. Lines look like
//
//	BenchmarkEngine-8   100   3879178 ns/op   5849000 B/op   293 allocs/op
//
// The trailing -N on the name is the GOMAXPROCS suffix and is stripped
// so snapshots from machines with different core counts compare.
// Repeated runs of the same benchmark (-count > 1) are averaged.
func parseBenchOutput(r io.Reader) (Snapshot, error) {
	sums := make(map[string]*Benchmark)
	counts := make(map[string]int)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := stripProcSuffix(fields[0])
		// fields[1] is the iteration count; the rest are value/unit pairs.
		b := Benchmark{Name: name}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return Snapshot{}, fmt.Errorf("line %q: bad value %q", sc.Text(), fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
				seen = true
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		if !seen {
			continue
		}
		if acc, ok := sums[name]; ok {
			acc.NsPerOp += b.NsPerOp
			acc.BytesPerOp += b.BytesPerOp
			acc.AllocsPerOp += b.AllocsPerOp
		} else {
			sums[name] = &b
			order = append(order, name)
		}
		counts[name]++
	}
	if err := sc.Err(); err != nil {
		return Snapshot{}, err
	}
	var snap Snapshot
	for _, name := range order {
		b := *sums[name]
		n := float64(counts[name])
		b.NsPerOp /= n
		b.BytesPerOp /= n
		b.AllocsPerOp /= n
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	return snap, nil
}

// stripProcSuffix removes the -N GOMAXPROCS suffix from a benchmark
// name, leaving sub-benchmark paths (and names like selective=true)
// intact.
func stripProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// compare prints an aligned report of current vs baseline and returns
// the number of failures: benchmarks whose ns/op regressed beyond the
// threshold, or that vanished from the current run. Improvements beyond
// the threshold are noted (refresh the baseline) but never fail.
func compare(w io.Writer, base, cur Snapshot, threshold float64) int {
	curBy := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	nameW := len("benchmark")
	for _, b := range base.Benchmarks {
		if len(b.Name) > nameW {
			nameW = len(b.Name)
		}
	}
	fmt.Fprintf(w, "%-*s  %12s  %12s  %8s  %s\n", nameW, "benchmark", "baseline", "current", "delta", "verdict")
	regressions := 0
	for _, b := range base.Benchmarks {
		c, ok := curBy[b.Name]
		if !ok {
			fmt.Fprintf(w, "%-*s  %12.0f  %12s  %8s  MISSING\n", nameW, b.Name, b.NsPerOp, "-", "-")
			regressions++
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		verdict := "ok"
		switch {
		case delta > threshold:
			verdict = "REGRESSION"
			regressions++
		case delta < -threshold:
			verdict = "improved (consider refreshing baseline)"
		}
		fmt.Fprintf(w, "%-*s  %12.0f  %12.0f  %+7.1f%%  %s\n", nameW, b.Name, b.NsPerOp, c.NsPerOp, delta*100, verdict)
	}
	// New benchmarks are informational: they have no baseline to regress
	// against, and the next baseline refresh picks them up.
	var fresh []string
	for _, c := range cur.Benchmarks {
		found := false
		for _, b := range base.Benchmarks {
			if b.Name == c.Name {
				found = true
				break
			}
		}
		if !found {
			fresh = append(fresh, c.Name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		fmt.Fprintf(w, "%-*s  %12s  %12.0f  %8s  new (no baseline)\n", nameW, name, "-", curBy[name].NsPerOp, "-")
	}
	return regressions
}
