// Ablation benchmarks for the design choices DESIGN.md calls out:
// index-lookup cost, message-traffic reduction, message-buffer sizing,
// and partition-count sensitivity.
package graphz_test

import (
	"fmt"
	"testing"

	"graphz/internal/algo/graphzalgo"
	"graphz/internal/bench"
	"graphz/internal/core"
	"graphz/internal/csr"
	"graphz/internal/dos"
	"graphz/internal/gen"
	"graphz/internal/graph"
	"graphz/internal/storage"
)

// ablationFixture builds one medium-sized graph in both layouts on null
// devices (no IO cost — these measure host-side data-structure work and
// engine message behaviour).
type ablationFixture struct {
	dosG *dos.Graph
	csrG *csr.Graph
}

var ablationFix *ablationFixture

func getAblationFixture(b *testing.B) *ablationFixture {
	b.Helper()
	if ablationFix != nil {
		return ablationFix
	}
	edges := gen.RMAT(16, 600_000, gen.NaturalRMAT, 77)
	dev1 := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev1, "raw", edges); err != nil {
		b.Fatal(err)
	}
	dg, err := dos.Convert(dos.ConvertConfig{Dev: dev1}, "raw", "g")
	if err != nil {
		b.Fatal(err)
	}
	dev2 := storage.NewDevice(storage.NullDevice, storage.Options{})
	if err := graph.WriteEdges(dev2, "raw", edges); err != nil {
		b.Fatal(err)
	}
	cg, err := csr.Build(csr.BuildConfig{Dev: dev2}, "raw", "g")
	if err != nil {
		b.Fatal(err)
	}
	if err := cg.LoadIndex(); err != nil {
		b.Fatal(err)
	}
	ablationFix = &ablationFixture{dosG: dg, csrG: cg}
	return ablationFix
}

// BenchmarkAblationIndexLookupDOS measures a random vertex's degree+offset
// through the bucket table (binary search over a few hundred entries).
func BenchmarkAblationIndexLookupDOS(b *testing.B) {
	f := getAblationFixture(b)
	n := graph.VertexID(f.dosG.NumVertices)
	var sink int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := graph.VertexID(uint32(i*2654435761)) % n
		off, err := f.dosG.EdgeOffset(v)
		if err != nil {
			b.Fatal(err)
		}
		sink += off
	}
	_ = sink
}

// BenchmarkAblationIndexLookupCSR measures the same lookup through the
// per-vertex offset array: faster per lookup but 8 bytes of resident
// memory per vertex — the trade DOS wins on footprint, not latency.
func BenchmarkAblationIndexLookupCSR(b *testing.B) {
	f := getAblationFixture(b)
	n := graph.VertexID(f.csrG.NumVertices)
	var sink int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := graph.VertexID(uint32(i*2654435761)) % n
		sink += f.csrG.OffsetOf(v)
	}
	_ = sink
}

// BenchmarkAblationMessageTraffic measures how many messages reach the
// disk with dynamic messages on versus off, under a multi-partition
// budget (the mechanism behind Figure 7's DM bar).
func BenchmarkAblationMessageTraffic(b *testing.B) {
	f := getAblationFixture(b)
	budget := 6*int64(storage.DefaultBlockSize) + f.dosG.IndexBytes() +
		int64(f.dosG.NumVertices)*8/3 + 4*1024
	var spilledDM, spilledStatic, sent int64
	for i := 0; i < b.N; i++ {
		for _, dm := range []bool{true, false} {
			opts := core.Options{MemoryBudget: budget, DynamicMessages: dm, MsgBufferBytes: 1024}
			res, _, err := graphzalgo.PageRank(f.dosG, opts, 3, 0.85)
			if err != nil {
				b.Fatal(err)
			}
			if dm {
				spilledDM = res.MessagesSpilled
				sent = res.MessagesSent
			} else {
				spilledStatic = res.MessagesSpilled
			}
		}
	}
	b.ReportMetric(float64(spilledDM)/float64(sent), "dyn-spill-frac")
	b.ReportMetric(float64(spilledStatic)/float64(sent), "static-spill-frac")
	if _, done := printOnce.LoadOrStore("ab-msg", true); !done {
		fmt.Printf("=== Ablation: message traffic === sent=%d, spilled with DM=%d, without DM=%d\n\n",
			sent, spilledDM, spilledStatic)
	}
}

// BenchmarkAblationMsgBuffer sweeps the per-partition message buffer
// size; larger buffers batch spills into fewer, bigger appends.
func BenchmarkAblationMsgBuffer(b *testing.B) {
	for _, bufBytes := range []int{1 << 10, 16 << 10, 256 << 10} {
		b.Run(fmt.Sprintf("buf%dKiB", bufBytes/1024), func(b *testing.B) {
			edges := gen.RMAT(15, 300_000, gen.NaturalRMAT, 78)
			var writeOps int64
			for i := 0; i < b.N; i++ {
				dev := storage.NewDevice(storage.SSD, storage.Options{})
				if err := graph.WriteEdges(dev, "raw", edges); err != nil {
					b.Fatal(err)
				}
				g, err := dos.Convert(dos.ConvertConfig{Dev: dev}, "raw", "g")
				if err != nil {
					b.Fatal(err)
				}
				budget := 6*int64(storage.DefaultBlockSize) + g.IndexBytes() +
					int64(g.NumVertices)*8/3 + 4*int64(bufBytes)
				dev.ResetStats()
				opts := core.Options{MemoryBudget: budget, DynamicMessages: true, MsgBufferBytes: bufBytes}
				if _, _, err := graphzalgo.PageRank(g, opts, 3, 0.85); err != nil {
					b.Fatal(err)
				}
				writeOps = dev.Stats().WriteOps
			}
			b.ReportMetric(float64(writeOps), "write-ops")
		})
	}
}

// BenchmarkAblationPartitions sweeps the partition count (by shrinking
// the budget) and reports spilled messages: more partitions mean more
// cross-partition traffic — the paper's Figure 2 effect in reverse.
func BenchmarkAblationPartitions(b *testing.B) {
	f := getAblationFixture(b)
	for _, parts := range []int64{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", parts), func(b *testing.B) {
			vertexBytes := int64(f.dosG.NumVertices) * 8
			budget := 6*int64(storage.DefaultBlockSize) + f.dosG.IndexBytes() +
				(vertexBytes+parts-1)/parts + parts*4096
			var spilled float64
			for i := 0; i < b.N; i++ {
				opts := core.Options{MemoryBudget: budget, DynamicMessages: true, MsgBufferBytes: 4096}
				res, _, err := graphzalgo.PageRank(f.dosG, opts, 3, 0.85)
				if err != nil {
					b.Fatal(err)
				}
				spilled = float64(res.MessagesSpilled) / float64(res.MessagesSent)
			}
			b.ReportMetric(spilled, "spill-frac")
		})
	}
}

// BenchmarkEngineMicroPageRank measures raw engine throughput (host time
// per edge per iteration) on the null device — the GC-pressure-sensitive
// hot path the repro notes flag for Go.
func BenchmarkEngineMicroPageRank(b *testing.B) {
	f := getAblationFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := core.Options{MemoryBudget: 64 << 20, DynamicMessages: true}
		if _, _, err := graphzalgo.PageRank(f.dosG, opts, 2, 0.85); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(2*f.dosG.NumEdges), "edges/op")
}

var _ = bench.DefaultBudget // keep the harness linked for future metrics
